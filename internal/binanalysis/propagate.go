package binanalysis

// Static fault-propagation analysis: from the bit-level liveness and
// known-bits machinery this file derives the third outcome class the
// paper's taxonomy needs. Bit liveness proves bits MASKED; the
// must-DUE analysis here proves bits CRASH-CERTAIN (DUE): a flipped
// bit whose every static path leads it, undemanded and unredefined,
// into a consumer that deterministically faults — a load or store
// whose base register the flip misaligns or pushes out of the mapped
// address space, or an indirect jump whose target it pushes out of the
// code image — before any instruction can demand the bit for a value,
// address LSB, branch, or output. Bits in neither set are SDC-possible:
// the corruption may reach an architecturally visible result.
//
// The DUE transfer is a backward MUST analysis, dual to liveness:
//
//	due_in(i)[r] = (due_out(i)[r] &^ demanded(i, r)) &^ killed(i, r)
//	               | crash(i, r)
//
// where demanded is the same per-operand demand mask the liveness
// transfer uses (a demanded bit may influence a value, so the crash is
// no longer the certain first effect), killed clears everything when i
// redefines r (the corruption is overwritten), and crash(i, r) is
// crashCertainMask for the base operand of a memory access or indirect
// jump. The crash term is OR'd in last: when the consumer itself is
// the crash-certain reader, the fault at i precedes any other effect
// of i (stores fault at commit before writing, loads fault before
// writeback, a corrupted jalr target faults at the very next commit).
//
// At block boundaries the must-property meets by INTERSECTION over
// successors, and the fixpoint is a greatest one (start from the full
// mask, shrink until stable). Blocks with statically unknown
// successors and blocks with none (halt, out-of-range terminators)
// contribute the empty mask. Soundness of the greatest fixpoint needs
// no reachability argument: unfolding the transfer inequality along
// the (finite) fault-free continuation from any commit point, a bit
// that is set either reaches a crash term — a consumer that faults on
// every execution — or survives, undemanded, to the final halt where
// due_out is 0, a contradiction. So a set bit always denotes a real
// crash-certain consumer ahead on the golden path, with no demand (and
// hence no architecturally visible influence, in particular no output)
// before it.
//
// Demand refinement inherits the single-fault rule from bitlive.go:
// demands consult only the known bits of registers OTHER than the one
// being judged, and the crash masks below consult no known bits at all
// — they rely only on the alignment and address-ceiling invariants
// that every fault-free execution of the machine obeys (a golden run
// that completed never took a memory fault, so every executed access
// had an aligned, in-range address).

import (
	"math/bits"

	"sevsim/internal/isa"
	"sevsim/internal/machine"
)

// addrHighBit is the position of the lowest address bit that is zero
// in every mappable machine address: the stack is the highest region
// and ends at machine.StackTop, so every valid data address is below
// it, and bits.Len64(StackTop-1) bounds them all. Flipping any base
// register bit at or above this position moves an in-range address out
// of the mapped space entirely (the clean address is < 2^addrHighBit,
// so the flip can only SET such a bit, adding 2^b without wrapping).
// addrCeilOK re-checks the layout per program before the DUE tier is
// allowed to use masks built on this constant.
var addrHighBit = bits.Len64(machine.StackTop - 1)

// addrCeilOK verifies the address-space layout the crash masks assume:
// code image and globals both end below 1<<addrHighBit (the stack does
// by construction of addrHighBit). codeLen is in instructions,
// globalSize in bytes; the page rounding machine.New applies is
// over-approximated by a whole extra page.
func addrCeilOK(codeLen int, globalSize uint64) bool {
	const page = 4096
	ceil := uint64(1) << uint(addrHighBit)
	codeEnd := machine.CodeBase + 4*uint64(codeLen) + page
	globalEnd := machine.GlobalBase + uint64(globalSize) + page
	return codeEnd <= ceil && globalEnd <= ceil && machine.StackTop <= ceil
}

// crashCertainMask returns, for one instruction, the bits of its Rs1
// operand whose corruption makes the instruction fault on every
// execution that reaches it fault-free. Only the base register of
// memory accesses and the target base of jalr have such bits:
//
//   - alignment bits, below log2(MemSize): the clean address is
//     size-aligned (a misaligned golden access would have faulted), so
//     the flip lands the access off-alignment by exactly +-2^b;
//   - ceiling bits, at or above addrHighBit: the clean address (and
//     for jalr the clean target) is below 2^addrHighBit, so those bits
//     are zero and the flip adds 2^b, leaving the mapped space.
//
// jalr's bits 0 and 1 are NOT crash-certain: the target computation
// masks with &^3, absorbing them. Store-to-load forwarding cannot
// rescue a corrupted address either: ceiling-bit addresses exceed
// every queued store's address, and an alignment-corrupted address can
// at most partially overlap one, which stalls the access until the
// queue drains and the memory system faults it.
//
// The switch must handle every isa opcode; the transfercover sevlint
// pass enforces this.
//
//bitflow:transfer
func crashCertainMask(in isa.Instr, xlen int) uint64 {
	m := xlenMask(xlen)
	ceil := m &^ lowMask(addrHighBit)
	switch in.Op {
	case isa.OpLb, isa.OpLbu, isa.OpSb:
		return ceil
	case isa.OpLw, isa.OpSw:
		return (ceil | lowMask(2)) & m
	case isa.OpLd, isa.OpSd:
		return (ceil | lowMask(3)) & m
	case isa.OpJalr:
		return ceil
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem, isa.OpAnd,
		isa.OpOr, isa.OpXor, isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlt,
		isa.OpSltu, isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlti, isa.OpSltiu,
		isa.OpLui, isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu,
		isa.OpBgeu, isa.OpJal, isa.OpOut, isa.OpHalt, isa.OpNop:
		// ALU ops, branches, direct jumps, output, and halt cannot
		// fault on an operand value: no corrupted register bit makes
		// them crash deterministically.
		return 0
	}
	// Illegal opcode: faults regardless of operands, so no bit is the
	// deterministic cause.
	return 0
}

// --- static memory model -----------------------------------------------------

// memAccess is one load or store with its abstract address: the
// known-bits of rs1+imm before the instruction, mirroring the
// simulator's address computation (imm sign-extended, sum XLEN-masked).
type memAccess struct {
	idx  int
	kb   KnownBits
	size int
}

func accessKB(g *CFG, i int, kz, ko []uint64, xlen int) KnownBits {
	m := xlenMask(xlen)
	in := g.Code[i]
	base := KnownBits{Zero: kz[i*32+int(in.Rs1)], One: ko[i*32+int(in.Rs1)]}
	return kbAdd(base, kbConst(uint64(int64(in.Imm)), m), 0, xlen)
}

// mayOverlap reports whether two accesses' byte ranges can intersect
// on any concretization of their abstract addresses, by interval
// reasoning: every concretization of k lies in [One, mask&^Zero].
func mayOverlap(a KnownBits, asize int, b KnownBits, bsize int, m uint64) bool {
	aMin, aMax := a.One&m, m&^a.Zero
	bMin, bMax := b.One&m, m&^b.Zero
	return aMin < bMax+uint64(bsize) && bMin < aMax+uint64(asize)
}

// loadWindowDemand maps a load destination's live-out mask back to the
// demanded bits of the loaded memory window (in window-local bit
// positions): the low 8*size bits directly, plus — for sign-extending
// loads — the window's top bit whenever any live destination bit lies
// above the window (every such bit replicates the sign).
func loadWindowDemand(op isa.Opcode, size int, live uint64) uint64 {
	w := lowMask(8 * size)
	d := live & w
	if op != isa.OpLbu && live&^w != 0 {
		d |= uint64(1) << (8*size - 1)
	}
	return d
}

// storeDemands computes, per store instruction, the bits of the stored
// value that any load anywhere in the program may architecturally
// observe; all other stored bits are dead the moment they leave the
// register. The final memory image is never compared (classification
// reads the output stream only), so a stored bit matters exactly when
// some load whose destination has live bits can read the bytes
// holding it.
//
// Matching is flow-insensitive (any load may execute after any store
// through CFG cycles) and aliasing is resolved by address known-bits:
// fully known addresses on both sides map bytes exactly; partially
// known ones fall back to interval overlap, demanding the full store
// window when the ranges can intersect and the load has any live
// destination bit. Store-to-load forwarding preserves these byte
// semantics (exact-address forwarding truncates through extendLoad
// like a memory read would).
//
// Returns nil when no store's demand shrinks below its full window, so
// callers can skip a refinement pass.
func storeDemands(g *CFG, kz, ko, liveOut []uint64, xlen int) []uint64 {
	m := xlenMask(xlen)
	var loads []memAccess
	var nStores int
	for i, in := range g.Code {
		switch {
		case in.Op.IsLoad():
			live := uint64(0)
			if d := def(in); d != 0xff {
				live = loadWindowDemand(in.Op, in.Op.MemSize(), liveOut[i*32+int(d)])
			}
			if live != 0 {
				loads = append(loads, memAccess{idx: i, kb: accessKB(g, i, kz, ko, xlen), size: in.Op.MemSize()})
			}
		case in.Op.IsStore():
			nStores++
		}
	}
	if nStores == 0 {
		return nil
	}
	sd := make([]uint64, len(g.Code))
	refined := false
	for i, in := range g.Code {
		if !in.Op.IsStore() {
			continue
		}
		ss := in.Op.MemSize()
		window := lowMask(8*ss) & m
		skb := accessKB(g, i, kz, ko, xlen)
		sAddr, sKnown := skb.Const(m)
		var demand uint64
		for _, l := range loads {
			if !mayOverlap(skb, ss, l.kb, l.size, m) {
				continue
			}
			lAddr, lKnown := l.kb.Const(m)
			if !sKnown || !lKnown {
				demand = window // may alias: every stored bit may be read
				break
			}
			ld := loadWindowDemand(g.Code[l.idx].Op, l.size, liveOut[l.idx*32+int(def(g.Code[l.idx]))])
			for o := 0; o < ss; o++ {
				a := sAddr + uint64(o)
				if a >= lAddr && a < lAddr+uint64(l.size) {
					lb := int(a - lAddr)
					demand |= (ld >> (8 * lb) & 0xff) << (8 * o)
				}
			}
			if demand == window {
				break
			}
		}
		sd[i] = demand & window
		if sd[i] != window {
			refined = true
		}
	}
	if !refined {
		return nil
	}
	return sd
}

// --- must-DUE fixpoint -------------------------------------------------------

// computeDueBits runs the backward must-DUE fixpoint described in the
// package comment above and returns flattened [instruction*32 +
// register] masks: dueIn is the crash-certain mask immediately before
// the instruction, dueOut immediately after. liveOut supplies the
// destination live masks the demand transfer needs; sd is the refined
// store-data demand from storeDemands (nil: full windows).
func computeDueBits(g *CFG, kz, ko, liveOut, sd []uint64, xlen int) (dueIn, dueOut []uint64) {
	n := len(g.Code)
	nb := len(g.Blocks)
	m := xlenMask(xlen)

	var full [32]uint64
	for r := 1; r < 32; r++ {
		full[r] = m
	}

	blockIn := make([][32]uint64, nb)
	for bi := range blockIn {
		blockIn[bi] = full
	}

	preds := make([][]int, nb)
	for bi := range g.Blocks {
		for _, s := range g.Blocks[bi].Succs {
			preds[s] = append(preds[s], bi)
		}
	}

	outOf := func(bi int) [32]uint64 {
		b := g.Blocks[bi]
		if b.Unknown || len(b.Succs) == 0 {
			// Unknown successors: no crash consumer is provable ahead.
			// No successors (halt or out-of-range terminator): nothing
			// executes after, so no bit is crash-certain.
			return [32]uint64{}
		}
		out := full
		for _, s := range b.Succs {
			for r := 1; r < 32; r++ {
				out[r] &= blockIn[s][r]
			}
		}
		return out
	}

	work := make([]int, 0, nb)
	inWork := make([]bool, nb)
	push := func(bi int) {
		if !inWork[bi] {
			inWork[bi] = true
			work = append(work, bi)
		}
	}
	for bi := nb - 1; bi >= 0; bi-- {
		push(bi)
	}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[bi] = false
		b := g.Blocks[bi]
		cur := outOf(bi)
		for i := b.End - 1; i >= b.Start; i-- {
			dueWalkOne(g, i, &cur, kz, ko, liveOut, sd, xlen)
		}
		if cur != blockIn[bi] {
			blockIn[bi] = cur
			for _, p := range preds[bi] {
				push(p)
			}
		}
	}

	dueIn = make([]uint64, n*32)
	dueOut = make([]uint64, n*32)
	for bi := range g.Blocks {
		b := g.Blocks[bi]
		cur := outOf(bi)
		for i := b.End - 1; i >= b.Start; i-- {
			for r := 0; r < 32; r++ {
				dueOut[i*32+r] = cur[r]
			}
			dueWalkOne(g, i, &cur, kz, ko, liveOut, sd, xlen)
			for r := 0; r < 32; r++ {
				dueIn[i*32+r] = cur[r]
			}
		}
	}
	return dueIn, dueOut
}

// dueWalkOne applies the backward must-DUE transfer of one instruction:
// kill the destination, strip every demanded source bit, then OR in
// the crash-certain mask of the base operand.
func dueWalkOne(g *CFG, i int, cur *[32]uint64, kz, ko, liveOut, sd []uint64, xlen int) {
	m := xlenMask(xlen)
	in := g.Code[i]
	var L uint64
	if d := def(in); d != 0xff {
		L = liveOut[i*32+int(d)]
		cur[d] = 0
	}
	s1, s2 := in.SourceRegs()
	if s1 == 0xff && s2 == 0xff {
		return
	}
	kb := func(r uint8) KnownBits {
		if r >= 32 {
			return kbTop(m)
		}
		return KnownBits{Zero: kz[i*32+int(r)], One: ko[i*32+int(r)]}
	}
	d1, d2 := demandMasks(in, L, kb(s1), kb(s2), xlen)
	if sd != nil && in.Op.IsStore() {
		d2 &= sd[i]
	}
	if s1 != 0xff && s1 != uint8(isa.RegZero) {
		cur[s1] &^= d1
	}
	if s2 != 0xff && s2 != uint8(isa.RegZero) {
		cur[s2] &^= d2
	}
	if s1 != 0xff && s1 != uint8(isa.RegZero) {
		cur[s1] |= crashCertainMask(in, xlen) & m
	}
}
