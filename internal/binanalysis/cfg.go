package binanalysis

import (
	"fmt"

	"sevsim/internal/isa"
)

// Block is one basic block: the half-open instruction range
// [Start, End) with its control-flow successors.
type Block struct {
	Start, End int
	Succs      []int // successor block indices, deduplicated, ascending

	// Unknown marks a block whose terminator's successors cannot be
	// enumerated statically (an indirect jalr that is not the return
	// idiom). Liveness treats such blocks as exits with every register
	// live, which is the conservative direction for dead-set consumers.
	Unknown bool
	// IsRet marks a block ending in the return idiom jalr zr, imm(ra);
	// its successors are every recorded return point.
	IsRet bool
}

// CFG is a control-flow graph over an assembled instruction sequence.
type CFG struct {
	Code    []isa.Instr
	Blocks  []Block
	BlockOf []int // instruction index -> containing block

	// FuncEntries are the entry points of the call graph: instruction 0
	// plus the target of every direct call (jal with rd=ra), ascending.
	FuncEntries []int
	// RetPoints are the instructions control returns to after a call:
	// the instruction following every direct or indirect call.
	RetPoints []int
}

// terminator kinds, derived from the last instruction of a block.
func isCall(in isa.Instr) bool {
	return (in.Op == isa.OpJal || in.Op == isa.OpJalr) && in.Rd == isa.RegRA
}

func isReturn(in isa.Instr) bool {
	return in.Op == isa.OpJalr && in.Rd == isa.RegZero && in.Rs1 == isa.RegRA
}

// branchTarget returns the absolute instruction index a branch or jal
// at index i transfers to.
func branchTarget(i int, in isa.Instr) int { return i + 1 + int(in.Imm) }

// BuildCFG reconstructs the control-flow graph of code. Leaders are
// instruction 0, every branch/jal target in range, and every
// instruction following a control transfer (branch fall-through, call
// return point, post-jump). Out-of-range targets do not create edges
// (the transfer faults at fetch); they are surfaced by CheckInvariants
// rather than here so a malformed binary can still be analyzed.
func BuildCFG(code []isa.Instr) (*CFG, error) {
	n := len(code)
	if n == 0 {
		return nil, fmt.Errorf("binanalysis: empty program")
	}

	leader := make([]bool, n)
	leader[0] = true
	mark := func(i int) {
		if i >= 0 && i < n {
			leader[i] = true
		}
	}
	for i, in := range code {
		switch {
		case in.Op.IsBranch():
			mark(branchTarget(i, in))
			mark(i + 1)
		case in.Op == isa.OpJal:
			mark(branchTarget(i, in))
			mark(i + 1)
		case in.Op == isa.OpJalr, in.Op == isa.OpHalt:
			mark(i + 1)
		}
	}

	g := &CFG{Code: code, BlockOf: make([]int, n)}
	for i := 0; i < n; i++ {
		if leader[i] {
			g.Blocks = append(g.Blocks, Block{Start: i})
		}
		g.BlockOf[i] = len(g.Blocks) - 1
	}
	for bi := range g.Blocks {
		if bi+1 < len(g.Blocks) {
			g.Blocks[bi].End = g.Blocks[bi+1].Start
		} else {
			g.Blocks[bi].End = n
		}
	}

	// Call graph anchors: function entries and return points.
	entrySet := map[int]bool{0: true}
	for i, in := range code {
		if !isCall(in) {
			continue
		}
		if in.Op == isa.OpJal {
			if t := branchTarget(i, in); t >= 0 && t < n {
				entrySet[t] = true
			}
		}
		if i+1 < n {
			g.RetPoints = append(g.RetPoints, i+1)
		}
	}
	for i := 0; i < n; i++ {
		if entrySet[i] {
			g.FuncEntries = append(g.FuncEntries, i)
		}
	}

	// Successor edges from each block's terminator.
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := code[b.End-1]
		add := func(i int) {
			if i < 0 || i >= n {
				return // faults at fetch: no successor
			}
			t := g.BlockOf[i]
			for _, s := range b.Succs {
				if s == t {
					return
				}
			}
			b.Succs = append(b.Succs, t)
		}
		switch {
		case last.Op.IsBranch():
			add(b.End) // fall-through
			add(branchTarget(b.End-1, last))
		case last.Op == isa.OpJal:
			add(branchTarget(b.End-1, last))
		case isReturn(last):
			b.IsRet = true
			// A return transfers to some caller's return point. Which one
			// is dynamic (the link register), so the static edge set is
			// every return point: an over-approximation that keeps the
			// backward liveness union sound for any actual caller.
			for _, rp := range g.RetPoints {
				add(rp)
			}
		case last.Op == isa.OpJalr:
			// Indirect transfer that is not the return idiom: target
			// statically unknown.
			b.Unknown = true
		case last.Op == isa.OpHalt:
			// Terminal: no successors.
		default:
			add(b.End)
		}
	}
	sortInts := func(xs []int) {
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
	}
	for bi := range g.Blocks {
		sortInts(g.Blocks[bi].Succs)
	}
	return g, nil
}

// InstrSuccs appends the instruction-level successors of instruction i
// to dst (used by the lifetime BFS). Unknown indirect transfers
// contribute no successors.
func (g *CFG) InstrSuccs(i int, dst []int) []int {
	in := g.Code[i]
	n := len(g.Code)
	add := func(t int) []int {
		if t >= 0 && t < n {
			dst = append(dst, t)
		}
		return dst
	}
	switch {
	case in.Op.IsBranch():
		dst = add(i + 1)
		dst = add(branchTarget(i, in))
	case in.Op == isa.OpJal:
		dst = add(branchTarget(i, in))
	case isReturn(in):
		for _, rp := range g.RetPoints {
			dst = add(rp)
		}
	case in.Op == isa.OpJalr, in.Op == isa.OpHalt:
		// unknown or terminal
	default:
		dst = add(i + 1)
	}
	return dst
}
