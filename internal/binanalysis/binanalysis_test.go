package binanalysis

import (
	"testing"

	"sevsim/internal/isa"
)

// call/return pair: main calls f, f saves and restores ra on the stack.
func callProg() []isa.Instr {
	return []isa.Instr{
		isa.Jal(isa.RegRA, 1), // 0: call f at 2
		isa.Halt(),            // 1
		isa.I(isa.OpAddi, isa.RegSP, isa.RegSP, -8), // 2: f
		isa.Store(isa.OpSw, isa.RegRA, isa.RegSP, 0),
		isa.Load(isa.OpLw, isa.RegRA, isa.RegSP, 0),
		isa.I(isa.OpAddi, isa.RegSP, isa.RegSP, 8),
		isa.Jalr(isa.RegZero, isa.RegRA, 0), // 6: return
	}
}

func TestBuildCFG(t *testing.T) {
	g, err := BuildCFG(callProg())
	if err != nil {
		t.Fatal(err)
	}
	if got := g.FuncEntries; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("FuncEntries = %v, want [0 2]", got)
	}
	if got := g.RetPoints; len(got) != 1 || got[0] != 1 {
		t.Fatalf("RetPoints = %v, want [1]", got)
	}
	// Blocks: [0,1) call, [1,2) halt, [2,7) f body ending in return.
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %+v, want 3", g.Blocks)
	}
	if s := g.Blocks[0].Succs; len(s) != 1 || g.Blocks[s[0]].Start != 2 {
		t.Fatalf("call block succs = %v", s)
	}
	if s := g.Blocks[1].Succs; len(s) != 0 {
		t.Fatalf("halt block succs = %v, want none", s)
	}
	ret := g.Blocks[2]
	if !ret.IsRet || len(ret.Succs) != 1 || g.Blocks[ret.Succs[0]].Start != 1 {
		t.Fatalf("return block = %+v, want edge to return point 1", ret)
	}
}

func TestBuildCFGEmpty(t *testing.T) {
	if _, err := BuildCFG(nil); err == nil {
		t.Fatal("want error for empty program")
	}
}

func TestLivenessStraightLine(t *testing.T) {
	a, err := Analyze([]isa.Instr{
		isa.I(isa.OpAddi, isa.RegT0, isa.RegZero, 1), // 0
		isa.I(isa.OpAddi, isa.RegT1, isa.RegZero, 2), // 1
		isa.R(isa.OpAdd, isa.RegA0, isa.RegT0, isa.RegT1),
		isa.Out(isa.RegA0), // 3
		isa.Halt(),         // 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.LiveOut[0].Has(isa.RegT0) {
		t.Errorf("t0 should be live out of its def: %v", a.LiveOut[0])
	}
	if a.LiveOut[0].Has(isa.RegT1) {
		t.Errorf("t1 live before its def: %v", a.LiveOut[0])
	}
	if a.LiveOut[2].Has(isa.RegT0) || !a.LiveOut[2].Has(isa.RegA0) {
		t.Errorf("after add, want t0 dead and a0 live: %v", a.LiveOut[2])
	}
	// After out, every register but the hard-wired zero is dead.
	if dead := a.DeadOut(3, 16); dead.Count() != 15 || dead.Has(isa.RegZero) {
		t.Errorf("DeadOut(3) = %v, want all 15 non-zero regs", dead)
	}
}

func TestLivenessLoop(t *testing.T) {
	// t0 counts down; live around the back edge.
	a, err := Analyze([]isa.Instr{
		isa.I(isa.OpAddi, isa.RegT0, isa.RegZero, 10),     // 0
		isa.I(isa.OpAddi, isa.RegT0, isa.RegT0, -1),       // 1: loop body
		isa.Branch(isa.OpBne, isa.RegT0, isa.RegZero, -2), // 2: -> 1
		isa.Halt(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.LiveOut[2].Has(isa.RegT0) {
		t.Errorf("t0 must stay live around the back edge: %v", a.LiveOut[2])
	}
}

func TestUnknownJalrAllLive(t *testing.T) {
	// An indirect jump that is not a return: every register must be
	// considered live at its out edge.
	a, err := Analyze([]isa.Instr{
		isa.Jalr(isa.RegZero, isa.RegT0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dead := a.DeadOut(0, 16); dead != 0 {
		t.Errorf("DeadOut past unknown jalr = %v, want empty", dead)
	}
}

func TestLifetimes(t *testing.T) {
	a, err := Analyze([]isa.Instr{
		isa.I(isa.OpAddi, isa.RegT0, isa.RegZero, 1), // 0: used at 3
		isa.I(isa.OpAddi, isa.RegT1, isa.RegZero, 2), // 1: used at 3
		isa.I(isa.OpAddi, isa.RegT2, isa.RegZero, 3), // 2: dead write
		isa.R(isa.OpAdd, isa.RegA0, isa.RegT0, isa.RegT1),
		isa.Out(isa.RegA0),
		isa.Halt(),
	})
	if err != nil {
		t.Fatal(err)
	}
	byIdx := map[int]Lifetime{}
	for _, lt := range a.Lifetimes {
		byIdx[lt.DefIdx] = lt
	}
	if lt := byIdx[0]; lt.Dist != 3 || lt.Uses != 1 {
		t.Errorf("def@0 lifetime = %+v, want Dist 3 Uses 1", lt)
	}
	if lt := byIdx[1]; lt.Dist != 2 {
		t.Errorf("def@1 lifetime = %+v, want Dist 2", lt)
	}
	if lt := byIdx[2]; lt.Dist != 0 || lt.Uses != 0 {
		t.Errorf("dead write lifetime = %+v, want Dist 0 Uses 0", lt)
	}
}

func TestLifetimeHistogram(t *testing.T) {
	defs := []Lifetime{{Dist: 0}, {Dist: 1}, {Dist: 2}, {Dist: 3}, {Dist: 4}, {Dist: 9}}
	bounds, counts := LifetimeHistogram(defs)
	// bins: 0 | 1 | 2 | 3..4 | 5..8 | 9..16
	want := []int{1, 1, 1, 2, 0, 1}
	if len(counts) != len(want) {
		t.Fatalf("bounds %v counts %v, want %d bins", bounds, counts, len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v (bounds %v), want %v", counts, bounds, want)
		}
	}
}

func TestInvariantsClean(t *testing.T) {
	a, err := Analyze(callProg())
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckInvariants(a); len(vs) != 0 {
		t.Fatalf("clean program, got violations: %v", vs)
	}
}

func TestInvariantViolations(t *testing.T) {
	cases := []struct {
		name string
		code []isa.Instr
		kind string
		idx  int
	}{
		{"target-range", []isa.Instr{
			isa.Branch(isa.OpBeq, isa.RegZero, isa.RegZero, 10),
			isa.Halt(),
		}, "target-range", 0},
		{"use-before-def", []isa.Instr{
			isa.Out(isa.RegT0),
			isa.Halt(),
		}, "use-before-def", 0},
		{"sp-write", []isa.Instr{
			isa.R(isa.OpAdd, isa.RegSP, isa.RegT0, isa.RegT1),
			isa.Halt(),
		}, "sp-write", 0},
		{"sp-imbalance", []isa.Instr{
			isa.Jal(isa.RegRA, 1), // call f
			isa.Halt(),
			isa.I(isa.OpAddi, isa.RegSP, isa.RegSP, -8), // f: push, never pop
			isa.Jalr(isa.RegZero, isa.RegRA, 0),
		}, "sp-imbalance", 3},
		{"sp-inconsistent", []isa.Instr{
			isa.Branch(isa.OpBeq, isa.RegT0, isa.RegZero, 2), // -> 3
			isa.I(isa.OpAddi, isa.RegSP, isa.RegSP, -8),
			isa.Jal(isa.RegZero, 0), // -> 3
			isa.Halt(),              // 3: join with offsets 0 and -8
		}, "sp-inconsistent", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := Analyze(tc.code)
			if err != nil {
				t.Fatal(err)
			}
			vs := CheckInvariants(a)
			for _, v := range vs {
				if v.Kind == tc.kind && v.Idx == tc.idx {
					return
				}
			}
			t.Fatalf("want %s at %d, got %v", tc.kind, tc.idx, vs)
		})
	}
}
