package binanalysis_test

// Cross-validation of the pruner's soundness claim against the actual
// simulator: every injection the static analysis proves masked is also
// simulated end to end, and the simulation must agree. This is the
// property the whole pruning optimization rests on; if the analyzer
// ever claims a live bit dead, this test catches it with the concrete
// (benchmark, level, cycle, bit) witness.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"sevsim/internal/binanalysis"
	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

func TestPrunerSoundnessAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates every pruned injection; skipped in -short")
	}
	cfg := machine.CortexA15Like()
	rf, ok := faultinj.TargetByName("RF")
	if !ok {
		t.Fatal("RF target missing")
	}
	const samplesPerCell = 400

	benches := []string{"qsort", "gsm", "sha"}
	var totalPruned atomic.Int64
	for _, name := range benches {
		bench, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, level := range compiler.Levels {
			t.Run(fmt.Sprintf("%s-%s", name, level), func(t *testing.T) {
				t.Parallel()
				prog, err := compiler.Compile(bench.Source(bench.TestSize), bench.Name, level,
					compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs})
				if err != nil {
					t.Fatal(err)
				}
				exp, err := faultinj.NewTracedExperiment(cfg, prog)
				if err != nil {
					t.Fatal(err)
				}
				a, err := binanalysis.AnalyzeWords(prog.Code)
				if err != nil {
					t.Fatal(err)
				}
				pruner, err := binanalysis.NewRFPruner(a, exp)
				if err != nil {
					t.Fatal(err)
				}
				if vs := binanalysis.CheckInvariants(a); len(vs) != 0 {
					t.Fatalf("compiler-emitted binary violates invariants: %v", vs)
				}
				b := pruner.Bound()
				if b.MaskedLB <= 0 || b.MaskedLB >= 1 || b.PrunableBits > b.SpaceBits {
					t.Fatalf("implausible bound: %+v", b)
				}
				injections, err := exp.Sample(rf, samplesPerCell, 13)
				if err != nil {
					t.Fatal(err)
				}
				pruned := 0
				for _, inj := range injections {
					prunable, reason := pruner.Prunable(rf, inj)
					if !prunable {
						continue
					}
					pruned++
					if r := exp.Inject(rf, inj); r.Outcome != faultinj.Masked {
						t.Errorf("cycle %d bit %d pruned (%s) but simulated as %s (%s)",
							inj.Cycle, inj.Bit, reason, r.Outcome, r.Reason)
					}
				}
				if pruned == 0 {
					t.Logf("no prunable injections in %d samples", samplesPerCell)
				}
				totalPruned.Add(int64(pruned))
			})
		}
	}
	// Subtests run in parallel, so totalPruned is checked in a cleanup
	// after they all finish.
	t.Cleanup(func() {
		if totalPruned.Load() == 0 {
			t.Error("no injection was prunable across any cell; cross-validation is vacuous")
		}
	})
}

// TestBitPrunerSoundnessAgainstSimulation is the bit-granular mirror:
// every injection the BitPruner proves masked — including the ones only
// bit-level liveness can prune — is simulated end to end and must come
// back Masked, with the concrete (benchmark, level, cycle, phys, bit)
// witness and the pruner's own reasoning printed on failure. It also
// checks the bound-domination acceptance criterion: the bit-granular
// Masked lower bound must be at least the register-granular one on
// every cell, and strictly greater somewhere at O2/O3 (the levels
// where masking idioms — byte truncation, shift counts, compares —
// survive into tight code).
func TestBitPrunerSoundnessAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates every pruned injection; skipped in -short")
	}
	cfg := machine.CortexA15Like()
	rf, ok := faultinj.TargetByName("RF")
	if !ok {
		t.Fatal("RF target missing")
	}
	const samplesPerCell = 400

	benches := []string{"qsort", "gsm", "sha"}
	var totalBitPruned, strictlyTighterHighOpt atomic.Int64
	for _, name := range benches {
		bench, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, level := range compiler.Levels {
			level := level
			t.Run(fmt.Sprintf("%s-%s", name, level), func(t *testing.T) {
				t.Parallel()
				prog, err := compiler.Compile(bench.Source(bench.TestSize), bench.Name, level,
					compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs})
				if err != nil {
					t.Fatal(err)
				}
				exp, err := faultinj.NewTracedExperiment(cfg, prog)
				if err != nil {
					t.Fatal(err)
				}
				a, err := binanalysis.AnalyzeWords(prog.Code)
				if err != nil {
					t.Fatal(err)
				}
				pruner, err := binanalysis.NewBitPruner(a, exp)
				if err != nil {
					t.Fatal(err)
				}
				b := pruner.Bound()
				if b.MaskedLB <= 0 || b.MaskedLB >= 1 || b.PrunableBits > b.SpaceBits {
					t.Fatalf("implausible bound: %+v", b)
				}
				// Bit granularity must dominate register granularity.
				if b.MaskedLB < b.RegMaskedLB || b.PrunableBits < b.RegPrunableBits {
					t.Fatalf("bit bound below register bound: %+v", b)
				}
				if b.PrunableBits > b.RegPrunableBits &&
					(level == compiler.O2 || level == compiler.O3) {
					strictlyTighterHighOpt.Add(1)
				}
				injections, err := exp.Sample(rf, samplesPerCell, 13)
				if err != nil {
					t.Fatal(err)
				}
				bitPruned := 0
				for _, inj := range injections {
					kind, reason := pruner.PrunableKind(rf, inj)
					if kind == faultinj.PruneNone {
						continue
					}
					if kind == faultinj.PruneBit {
						bitPruned++
					}
					if r := exp.Inject(rf, inj); r.Outcome != faultinj.Masked {
						t.Errorf("%s %s: cycle %d phys %d bit %d pruned at %s granularity (%s) but simulated as %s (%s)",
							bench.Name, level, inj.Cycle,
							inj.Bit/uint64(cfg.CPU.XLEN), inj.Bit%uint64(cfg.CPU.XLEN),
							kind, reason, r.Outcome, r.Reason)
					}
				}
				totalBitPruned.Add(int64(bitPruned))
			})
		}
	}
	t.Cleanup(func() {
		if totalBitPruned.Load() == 0 {
			t.Error("no injection was pruned at bit granularity across any cell; the bit extension is vacuous")
		}
		if strictlyTighterHighOpt.Load() == 0 {
			t.Error("bit-granular bound never strictly exceeded the register-granular bound at O2/O3")
		}
	})
}

// TestDUEPrunerSoundnessAgainstSimulation validates the crash-proving
// tier on the full (bench, level, march) grid — 8 benchmarks x 4
// levels x 2 microarchitectures = 64 cells:
//
//   - every injection the DUEPruner claims crash-certain is simulated
//     end to end and must come back Crash (the DUE-soundness claim);
//   - the three-way bound partitions: MaskedLB + DueLB + SDCUpperBound
//     sums to 1 and the Masked fields match BitPruner's exactly;
//   - on the sampled fault set, the static DUE lower bound (sites
//     claimed crash-certain) sits at or below the dynamic crash count
//     and the static SDC-possible upper bound (sites proven neither
//     Masked nor DUE) at or above the dynamic SDC count, per cell;
//   - the pruner covers strictly more of the fault space than
//     BitPruner alone on at least one O2 and one O3 cell per march.
func TestDUEPrunerSoundnessAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates every sampled injection; skipped in -short")
	}
	rf, ok := faultinj.TargetByName("RF")
	if !ok {
		t.Fatal("RF target missing")
	}
	const samplesPerCell = 200

	var totalDuePruned atomic.Int64
	var strictlyWiderO2, strictlyWiderO3 atomic.Int64
	for _, cfg := range machine.Configs() {
		for _, bench := range workloads.All() {
			for _, level := range compiler.Levels {
				cfg, bench, level := cfg, bench, level
				t.Run(fmt.Sprintf("%s-%s-%s", cfg.Name, bench.Name, level), func(t *testing.T) {
					t.Parallel()
					prog, err := compiler.Compile(bench.Source(bench.TestSize), bench.Name, level,
						compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs})
					if err != nil {
						t.Fatal(err)
					}
					exp, err := faultinj.NewTracedExperiment(cfg, prog)
					if err != nil {
						t.Fatal(err)
					}
					a, err := binanalysis.AnalyzeWords(prog.Code)
					if err != nil {
						t.Fatal(err)
					}
					pruner, err := binanalysis.NewDUEPruner(a, exp)
					if err != nil {
						t.Fatal(err)
					}
					bitOnly, err := binanalysis.NewBitPruner(a, exp)
					if err != nil {
						t.Fatal(err)
					}
					b, bb := pruner.Bound(), bitOnly.Bound()

					// Three-way partition: the Masked side is exactly the
					// bit pruner's, the DUE slice is non-negative, and the
					// classes sum to the whole space.
					if b.MaskedLB != bb.MaskedLB || b.PrunableBits != bb.PrunableBits ||
						b.RegMaskedLB != bb.RegMaskedLB {
						t.Fatalf("DUE tier changed the Masked bound: %+v vs %+v", b, bb)
					}
					if b.DueLB < 0 || b.DueLB > 1 || b.DuePrunableBits > b.SpaceBits {
						t.Fatalf("implausible DUE bound: %+v", b)
					}
					if sum := b.MaskedLB + b.DueLB + b.SDCUpperBound; sum < 0.999999 || sum > 1.000001 {
						t.Fatalf("three-way bound does not partition: sum %.9f (%+v)", sum, b)
					}
					if b.DuePrunableBits > 0 {
						switch level {
						case compiler.O2:
							strictlyWiderO2.Add(1)
						case compiler.O3:
							strictlyWiderO3.Add(1)
						}
					}

					injections, err := exp.Sample(rf, samplesPerCell, 13)
					if err != nil {
						t.Fatal(err)
					}
					duePruned, maskedClaimed, crashes, sdcs := 0, 0, 0, 0
					for _, inj := range injections {
						kind, reason := pruner.PrunableKind(rf, inj)
						r := exp.Inject(rf, inj)
						switch r.Outcome {
						case faultinj.Crash:
							crashes++
						case faultinj.SDC:
							sdcs++
						}
						switch kind {
						case faultinj.PruneReg, faultinj.PruneBit:
							maskedClaimed++
						case faultinj.PruneDUE:
							duePruned++
							if r.Outcome != faultinj.Crash {
								t.Errorf("%s %s %s: cycle %d phys %d bit %d claimed crash-certain (%s) but simulated as %s (%s)",
									cfg.Name, bench.Name, level, inj.Cycle,
									inj.Bit/uint64(cfg.CPU.XLEN), inj.Bit%uint64(cfg.CPU.XLEN),
									reason, r.Outcome, r.Reason)
							}
						}
					}
					// The static verdicts must bracket the dynamic class
					// counts on the same sample: sites claimed DUE are a
					// lower bound on crashes, and sites proven neither
					// Masked nor DUE (the SDC-possible set) an upper bound
					// on SDCs. Comparing counts over one sample keeps the
					// check deterministic and free of binomial slack —
					// space-wide fractions would need a confidence margin.
					if duePruned > crashes {
						t.Errorf("%s %s %s: %d sampled sites claimed crash-certain but only %d crashes observed",
							cfg.Name, bench.Name, level, duePruned, crashes)
					}
					if sdcUB := len(injections) - maskedClaimed - duePruned; sdcs > sdcUB {
						t.Errorf("%s %s %s: %d SDC outcomes exceed the %d-site static SDC-possible set",
							cfg.Name, bench.Name, level, sdcs, sdcUB)
					}
					totalDuePruned.Add(int64(duePruned))
				})
			}
		}
	}
	t.Cleanup(func() {
		if totalDuePruned.Load() == 0 {
			t.Error("no sampled injection was DUE-pruned across any cell; the crash tier is vacuous")
		}
		if strictlyWiderO2.Load() == 0 || strictlyWiderO3.Load() == 0 {
			t.Errorf("DUE tier never widened coverage beyond BitPruner at O2 (%d cells) / O3 (%d cells)",
				strictlyWiderO2.Load(), strictlyWiderO3.Load())
		}
	})
}
