package binanalysis_test

// Cross-validation of the pruner's soundness claim against the actual
// simulator: every injection the static analysis proves masked is also
// simulated end to end, and the simulation must agree. This is the
// property the whole pruning optimization rests on; if the analyzer
// ever claims a live bit dead, this test catches it with the concrete
// (benchmark, level, cycle, bit) witness.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"sevsim/internal/binanalysis"
	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

func TestPrunerSoundnessAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates every pruned injection; skipped in -short")
	}
	cfg := machine.CortexA15Like()
	rf, ok := faultinj.TargetByName("RF")
	if !ok {
		t.Fatal("RF target missing")
	}
	const samplesPerCell = 400

	benches := []string{"qsort", "gsm", "sha"}
	var totalPruned atomic.Int64
	for _, name := range benches {
		bench, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, level := range compiler.Levels {
			t.Run(fmt.Sprintf("%s-%s", name, level), func(t *testing.T) {
				t.Parallel()
				prog, err := compiler.Compile(bench.Source(bench.TestSize), bench.Name, level,
					compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs})
				if err != nil {
					t.Fatal(err)
				}
				exp, err := faultinj.NewTracedExperiment(cfg, prog)
				if err != nil {
					t.Fatal(err)
				}
				a, err := binanalysis.AnalyzeWords(prog.Code)
				if err != nil {
					t.Fatal(err)
				}
				pruner, err := binanalysis.NewRFPruner(a, exp)
				if err != nil {
					t.Fatal(err)
				}
				if vs := binanalysis.CheckInvariants(a); len(vs) != 0 {
					t.Fatalf("compiler-emitted binary violates invariants: %v", vs)
				}
				b := pruner.Bound()
				if b.MaskedLB <= 0 || b.MaskedLB >= 1 || b.PrunableBits > b.SpaceBits {
					t.Fatalf("implausible bound: %+v", b)
				}
				injections, err := exp.Sample(rf, samplesPerCell, 13)
				if err != nil {
					t.Fatal(err)
				}
				pruned := 0
				for _, inj := range injections {
					prunable, reason := pruner.Prunable(rf, inj)
					if !prunable {
						continue
					}
					pruned++
					if r := exp.Inject(rf, inj); r.Outcome != faultinj.Masked {
						t.Errorf("cycle %d bit %d pruned (%s) but simulated as %s (%s)",
							inj.Cycle, inj.Bit, reason, r.Outcome, r.Reason)
					}
				}
				if pruned == 0 {
					t.Logf("no prunable injections in %d samples", samplesPerCell)
				}
				totalPruned.Add(int64(pruned))
			})
		}
	}
	// Subtests run in parallel, so totalPruned is checked in a cleanup
	// after they all finish.
	t.Cleanup(func() {
		if totalPruned.Load() == 0 {
			t.Error("no injection was prunable across any cell; cross-validation is vacuous")
		}
	})
}

// TestBitPrunerSoundnessAgainstSimulation is the bit-granular mirror:
// every injection the BitPruner proves masked — including the ones only
// bit-level liveness can prune — is simulated end to end and must come
// back Masked, with the concrete (benchmark, level, cycle, phys, bit)
// witness and the pruner's own reasoning printed on failure. It also
// checks the bound-domination acceptance criterion: the bit-granular
// Masked lower bound must be at least the register-granular one on
// every cell, and strictly greater somewhere at O2/O3 (the levels
// where masking idioms — byte truncation, shift counts, compares —
// survive into tight code).
func TestBitPrunerSoundnessAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates every pruned injection; skipped in -short")
	}
	cfg := machine.CortexA15Like()
	rf, ok := faultinj.TargetByName("RF")
	if !ok {
		t.Fatal("RF target missing")
	}
	const samplesPerCell = 400

	benches := []string{"qsort", "gsm", "sha"}
	var totalBitPruned, strictlyTighterHighOpt atomic.Int64
	for _, name := range benches {
		bench, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, level := range compiler.Levels {
			level := level
			t.Run(fmt.Sprintf("%s-%s", name, level), func(t *testing.T) {
				t.Parallel()
				prog, err := compiler.Compile(bench.Source(bench.TestSize), bench.Name, level,
					compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs})
				if err != nil {
					t.Fatal(err)
				}
				exp, err := faultinj.NewTracedExperiment(cfg, prog)
				if err != nil {
					t.Fatal(err)
				}
				a, err := binanalysis.AnalyzeWords(prog.Code)
				if err != nil {
					t.Fatal(err)
				}
				pruner, err := binanalysis.NewBitPruner(a, exp)
				if err != nil {
					t.Fatal(err)
				}
				b := pruner.Bound()
				if b.MaskedLB <= 0 || b.MaskedLB >= 1 || b.PrunableBits > b.SpaceBits {
					t.Fatalf("implausible bound: %+v", b)
				}
				// Bit granularity must dominate register granularity.
				if b.MaskedLB < b.RegMaskedLB || b.PrunableBits < b.RegPrunableBits {
					t.Fatalf("bit bound below register bound: %+v", b)
				}
				if b.PrunableBits > b.RegPrunableBits &&
					(level == compiler.O2 || level == compiler.O3) {
					strictlyTighterHighOpt.Add(1)
				}
				injections, err := exp.Sample(rf, samplesPerCell, 13)
				if err != nil {
					t.Fatal(err)
				}
				bitPruned := 0
				for _, inj := range injections {
					kind, reason := pruner.PrunableKind(rf, inj)
					if kind == faultinj.PruneNone {
						continue
					}
					if kind == faultinj.PruneBit {
						bitPruned++
					}
					if r := exp.Inject(rf, inj); r.Outcome != faultinj.Masked {
						t.Errorf("%s %s: cycle %d phys %d bit %d pruned at %s granularity (%s) but simulated as %s (%s)",
							bench.Name, level, inj.Cycle,
							inj.Bit/uint64(cfg.CPU.XLEN), inj.Bit%uint64(cfg.CPU.XLEN),
							kind, reason, r.Outcome, r.Reason)
					}
				}
				totalBitPruned.Add(int64(bitPruned))
			})
		}
	}
	t.Cleanup(func() {
		if totalBitPruned.Load() == 0 {
			t.Error("no injection was pruned at bit granularity across any cell; the bit extension is vacuous")
		}
		if strictlyTighterHighOpt.Load() == 0 {
			t.Error("bit-granular bound never strictly exceeded the register-granular bound at O2/O3")
		}
	})
}
