package binanalysis_test

// Cross-validation of the pruner's soundness claim against the actual
// simulator: every injection the static analysis proves masked is also
// simulated end to end, and the simulation must agree. This is the
// property the whole pruning optimization rests on; if the analyzer
// ever claims a live bit dead, this test catches it with the concrete
// (benchmark, level, cycle, bit) witness.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"sevsim/internal/binanalysis"
	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

func TestPrunerSoundnessAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates every pruned injection; skipped in -short")
	}
	cfg := machine.CortexA15Like()
	rf, ok := faultinj.TargetByName("RF")
	if !ok {
		t.Fatal("RF target missing")
	}
	const samplesPerCell = 400

	benches := []string{"qsort", "gsm", "sha"}
	var totalPruned atomic.Int64
	for _, name := range benches {
		bench, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, level := range compiler.Levels {
			t.Run(fmt.Sprintf("%s-%s", name, level), func(t *testing.T) {
				t.Parallel()
				prog, err := compiler.Compile(bench.Source(bench.TestSize), bench.Name, level,
					compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs})
				if err != nil {
					t.Fatal(err)
				}
				exp, err := faultinj.NewTracedExperiment(cfg, prog)
				if err != nil {
					t.Fatal(err)
				}
				a, err := binanalysis.AnalyzeWords(prog.Code)
				if err != nil {
					t.Fatal(err)
				}
				pruner, err := binanalysis.NewRFPruner(a, exp)
				if err != nil {
					t.Fatal(err)
				}
				if vs := binanalysis.CheckInvariants(a); len(vs) != 0 {
					t.Fatalf("compiler-emitted binary violates invariants: %v", vs)
				}
				b := pruner.Bound()
				if b.MaskedLB <= 0 || b.MaskedLB >= 1 || b.PrunableBits > b.SpaceBits {
					t.Fatalf("implausible bound: %+v", b)
				}
				injections, err := exp.Sample(rf, samplesPerCell, 13)
				if err != nil {
					t.Fatal(err)
				}
				pruned := 0
				for _, inj := range injections {
					prunable, reason := pruner.Prunable(rf, inj)
					if !prunable {
						continue
					}
					pruned++
					if r := exp.Inject(rf, inj); r.Outcome != faultinj.Masked {
						t.Errorf("cycle %d bit %d pruned (%s) but simulated as %s (%s)",
							inj.Cycle, inj.Bit, reason, r.Outcome, r.Reason)
					}
				}
				if pruned == 0 {
					t.Logf("no prunable injections in %d samples", samplesPerCell)
				}
				totalPruned.Add(int64(pruned))
			})
		}
	}
	// Subtests run in parallel, so totalPruned is checked in a cleanup
	// after they all finish.
	t.Cleanup(func() {
		if totalPruned.Load() == 0 {
			t.Error("no injection was prunable across any cell; cross-validation is vacuous")
		}
	})
}
