package binanalysis_test

// Differential soundness fuzz for the known-bits domain: random
// straight-line instruction sequences are executed concretely on the
// full timing simulator (the same machine the fault injector drives —
// the repo's ground-truth interpreter of the ISA), and every concrete
// register value observed through an `out` instruction must be
// compatible with the abstract known-bits state at that point: no bit
// the analysis claims known-0 may be set, and no bit claimed known-1
// may be clear. Both microarchitectures run, so the transfers are
// exercised at XLEN 32 and 64 (sign extension, shift-count masking,
// and the div/rem corner cases all differ between the two).

import (
	"testing"

	"sevsim/internal/binanalysis"
	"sevsim/internal/isa"
	"sevsim/internal/machine"
)

// fuzzRegs is the register pool fuzz programs compute in: the argument
// and temporary registers, away from zr/sp/ra so the CFG invariants
// and the return idiom stay out of the picture.
var fuzzRegs = []uint8{
	uint8(isa.RegA0), uint8(isa.RegA1), uint8(isa.RegA2), uint8(isa.RegA3),
	uint8(isa.RegT0), uint8(isa.RegT1), uint8(isa.RegT2), uint8(isa.RegS0),
}

// fuzzOps are the ALU opcodes a fuzz byte can select. Loads, stores,
// branches, and jumps are excluded: the program must stay straight-line
// and memory-free so the concrete run is a pure function of the
// register initialization.
var fuzzOps = []isa.Opcode{
	isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
	isa.OpAnd, isa.OpOr, isa.OpXor,
	isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlt, isa.OpSltu,
	isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
	isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlti, isa.OpSltiu,
}

func isImmOp(op isa.Opcode) bool {
	switch op {
	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlti, isa.OpSltiu:
		return true
	}
	return false
}

// buildFuzzProgram decodes fuzz bytes into a straight-line program:
// every pool register is initialized to a 32-bit constant (lui + ori),
// then each 5-byte chunk appends one ALU instruction followed by an
// `out` of its destination, so the abstract state is checked after
// every single transfer. Returns the instructions and, for each out,
// the (instruction index, observed register) pair.
func buildFuzzProgram(data []byte) (prog []isa.Instr, outs [][2]int) {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	for _, r := range fuzzRegs {
		hi := int32(int16(uint16(next()) | uint16(next())<<8))
		lo := int32(uint16(next()) | uint16(next())<<8)
		prog = append(prog,
			isa.I(isa.OpLui, r, 0, hi),
			isa.I(isa.OpOri, r, r, lo))
	}
	nops := 0
	for len(data) >= 5 && nops < 24 {
		op := fuzzOps[int(next())%len(fuzzOps)]
		rd := fuzzRegs[int(next())%len(fuzzRegs)]
		rs1 := fuzzRegs[int(next())%len(fuzzRegs)]
		if isImmOp(op) {
			imm := int32(int16(uint16(next()) | uint16(next())<<8))
			prog = append(prog, isa.I(op, rd, rs1, imm))
		} else {
			rs2 := fuzzRegs[int(next())%len(fuzzRegs)]
			next() // keep chunking uniform
			prog = append(prog, isa.R(op, rd, rs1, rs2))
		}
		outs = append(outs, [2]int{len(prog), int(rd)})
		prog = append(prog, isa.Out(rd))
		nops++
	}
	// Final observation of the whole pool.
	for _, r := range fuzzRegs {
		outs = append(outs, [2]int{len(prog), int(r)})
		prog = append(prog, isa.Out(r))
	}
	prog = append(prog, isa.Halt())
	return prog, outs
}

// FuzzKnownBitsVsInterp cross-checks the abstract interpretation
// against concrete interpretation/execution. (The name keeps the
// historical "interp" suffix: the concrete oracle is the cycle-level
// machine, which is the repo's executable semantics of the ISA — the
// MiniC-level internal/interp never sees SEV instructions.)
func FuzzKnownBitsVsInterp(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 1, 2, 3, 4, 5})
	f.Add([]byte{
		0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x80, 0, 0, 0x80, 1, 1, 1, 1,
		3, 0, 1, 2, 0, // div
		8, 1, 2, 0, 31, // sll
		20, 3, 4, 0xff, 0, // srai
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, outs := buildFuzzProgram(data)
		words := isa.Assemble(prog)
		a, err := binanalysis.AnalyzeWords(words)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		for _, cfg := range []machine.Config{machine.CortexA15Like(), machine.CortexA72Like()} {
			xlen := cfg.CPU.XLEN
			mask := ^uint64(0)
			if xlen < 64 {
				mask = 1<<xlen - 1
			}
			bits := a.Bits(xlen)
			mm := machine.New(cfg, &machine.Program{
				Name: "fuzz", Code: words, Entry: machine.CodeBase, GlobalSize: 64,
			})
			res := mm.Run(1_000_000)
			if res.Outcome != machine.OutcomeOK {
				t.Fatalf("%s: straight-line ALU program did not complete: %s %s",
					cfg.Name, res.Outcome, res.Reason)
			}
			if len(res.Output) != len(outs) {
				t.Fatalf("%s: %d outputs, want %d", cfg.Name, len(res.Output), len(outs))
			}
			for k, o := range outs {
				idx, reg := o[0], uint8(o[1])
				kb := bits.KnownIn(idx, reg)
				v := res.Output[k]
				if !kb.Compatible(v, mask) {
					t.Errorf("%s: out #%d at idx %d: reg %s = %#x contradicts known bits (zero=%#x one=%#x)",
						cfg.Name, k, idx, isa.RegName(reg), v, kb.Zero, kb.One)
				}
			}
		}
	})
}
