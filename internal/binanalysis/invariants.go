package binanalysis

import (
	"fmt"

	"sevsim/internal/isa"
)

// Binary invariant checker: structural sanity checks over an assembled
// binary that hold for every program our codegen emits. A violation
// does not make the analysis unsound — it flags a binary that would
// fault, clobber its own stack, or read uninitialized state when run.

// Violation is one invariant violation, anchored at an instruction.
type Violation struct {
	Idx  int    // instruction index
	Kind string // "target-range", "use-before-def", "sp-write", "sp-imbalance", "sp-inconsistent"
	Msg  string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%d] %s: %s", v.Idx, v.Kind, v.Msg)
}

// CheckInvariants runs all checks over an analyzed binary:
//
//  1. target-range: every branch/jal target lies inside the binary.
//  2. use-before-def: no caller-saved register is live at program
//     entry; a live one would be read before anything defines it.
//     Callee-saved registers and sp are exempt — prologues legitimately
//     save callee-saved registers, and sp is initialized by the machine.
//  3. sp-*: the stack pointer is only adjusted by addi sp, sp, imm,
//     its net adjustment is zero at every return, and all paths joining
//     at an instruction agree on the current adjustment. Calls are
//     assumed balanced (checked independently at each callee's returns).
func CheckInvariants(a *Analysis) []Violation {
	var vs []Violation
	g := a.CFG
	n := len(g.Code)

	// 1. Control-transfer targets in range.
	for i, in := range g.Code {
		if in.Op.IsBranch() || in.Op == isa.OpJal {
			if t := branchTarget(i, in); t < 0 || t >= n {
				vs = append(vs, Violation{
					Idx:  i,
					Kind: "target-range",
					Msg:  fmt.Sprintf("%s target %d outside [0,%d)", in.Op.Name(), t, n),
				})
			}
		}
	}

	// 2. Caller-saved registers live at entry.
	for r := uint8(0); r < 32; r++ {
		if a.LiveIn[0].Has(r) && isa.CallerSaved(r) {
			vs = append(vs, Violation{
				Idx:  0,
				Kind: "use-before-def",
				Msg:  fmt.Sprintf("caller-saved %s read before any definition", isa.RegName(r)),
			})
		}
	}

	// 3. Stack-pointer balance, per function. Forward propagation of the
	// net SP adjustment from each function entry; return edges are not
	// followed (each function is checked against its own entry offset)
	// and calls fall through to their return point with the caller's
	// offset intact.
	const unseen = int64(-1) << 62
	off := make([]int64, n)
	for _, entry := range g.FuncEntries {
		for i := range off {
			off[i] = unseen
		}
		queue := []int{entry}
		off[entry] = 0
		reported := map[int]bool{}
		propagate := func(from int, cur int64, to int) {
			if to < 0 || to >= n {
				return
			}
			if off[to] == unseen {
				off[to] = cur
				queue = append(queue, to)
			} else if off[to] != cur && !reported[to] {
				reported[to] = true
				vs = append(vs, Violation{
					Idx:  to,
					Kind: "sp-inconsistent",
					Msg:  fmt.Sprintf("paths join with sp adjustments %d and %d (from %d)", off[to], cur, from),
				})
			}
		}
		for qi := 0; qi < len(queue); qi++ {
			i := queue[qi]
			in := g.Code[i]
			cur := off[i]
			if def(in) == isa.RegSP {
				if in.Op == isa.OpAddi && in.Rs1 == isa.RegSP {
					cur += int64(in.Imm)
				} else {
					vs = append(vs, Violation{
						Idx:  i,
						Kind: "sp-write",
						Msg:  fmt.Sprintf("sp written by %s (only addi sp, sp, imm is balanced)", in.Op.Name()),
					})
					continue // offset unknown past this point
				}
			}
			switch {
			case in.Op.IsBranch():
				propagate(i, cur, i+1)
				propagate(i, cur, branchTarget(i, in))
			case isCall(in):
				propagate(i, cur, i+1) // callee assumed balanced
			case in.Op == isa.OpJal: // non-call direct jump
				propagate(i, cur, branchTarget(i, in))
			case isReturn(in):
				if cur != 0 {
					vs = append(vs, Violation{
						Idx:  i,
						Kind: "sp-imbalance",
						Msg:  fmt.Sprintf("return with net sp adjustment %d", cur),
					})
				}
			case in.Op == isa.OpJalr, in.Op == isa.OpHalt:
				// indirect jump with unknown target, or terminal: stop
			default:
				propagate(i, cur, i+1)
			}
		}
	}
	return vs
}
