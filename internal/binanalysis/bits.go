package binanalysis

// BitAnalysis joins the forward known-bits interpretation with the
// backward bit-level liveness into per-instruction dead-bit masks. It
// strictly subsumes the register-granular results: a register that
// DeadOut reports dead contributes a full dead mask, and a live
// register may still expose individual provably dead bits (masked-off
// lanes, shift-count high bits, compare inputs with decided outcomes).

import "sevsim/internal/isa"

// BitAnalysis holds the bit-granular results for one binary at one
// machine word width. Obtain it via Analysis.Bits.
type BitAnalysis struct {
	XLEN int
	Mask uint64 // low-XLEN-bits value mask

	a *Analysis

	// Flattened [instruction*32 + register] masks. kz/ko are the
	// known-zero/known-one masks in effect BEFORE the instruction;
	// liveIn/liveOut are the live-bit masks before/after it; dueIn and
	// dueOut are the crash-certain (must-DUE) masks from the
	// fault-propagation analysis (propagate.go).
	kz, ko  []uint64
	liveIn  []uint64
	liveOut []uint64
	dueIn   []uint64
	dueOut  []uint64
}

// Bits returns the bit-granular analysis for the given word width,
// computing it on first use and caching it on the Analysis. Safe for
// concurrent use.
func (a *Analysis) Bits(xlen int) *BitAnalysis {
	a.bitsMu.Lock()
	defer a.bitsMu.Unlock()
	if b, ok := a.bits[xlen]; ok {
		return b
	}
	kz, ko := computeKnownBits(a.CFG, xlen)
	liveIn, liveOut, sd := computeBitLiveness(a.CFG, kz, ko, xlen)
	dueIn, dueOut := computeDueBits(a.CFG, kz, ko, liveOut, sd, xlen)
	b := &BitAnalysis{
		XLEN:    xlen,
		Mask:    xlenMask(xlen),
		a:       a,
		kz:      kz,
		ko:      ko,
		liveIn:  liveIn,
		liveOut: liveOut,
		dueIn:   dueIn,
		dueOut:  dueOut,
	}
	if a.bits == nil {
		a.bits = make(map[int]*BitAnalysis)
	}
	a.bits[xlen] = b
	return b
}

// KnownIn returns the known-bits state of register r immediately
// before instruction i executes, on fault-free executions.
func (b *BitAnalysis) KnownIn(i int, r uint8) KnownBits {
	if r >= 32 {
		return kbTop(b.Mask)
	}
	return KnownBits{Zero: b.kz[i*32+int(r)], One: b.ko[i*32+int(r)]}
}

// LiveOutBits returns the live-bit mask of register r immediately
// after instruction i.
func (b *BitAnalysis) LiveOutBits(i int, r uint8) uint64 {
	if r >= 32 {
		return b.Mask
	}
	return b.liveOut[i*32+int(r)]
}

// DeadOutBits returns the bits of register r provably dead immediately
// after instruction i: flipping any of them in a committed state
// cannot change any architecturally visible outcome. Register-granular
// deadness is OR'd in, so the result always contains (and may strictly
// exceed) what DeadOut implies; register 0 is excluded for the same
// reason DeadOut excludes it.
func (b *BitAnalysis) DeadOutBits(i int, r uint8) uint64 {
	if r == uint8(isa.RegZero) || r >= 32 {
		return 0
	}
	if !b.a.LiveOut[i].Has(r) {
		return b.Mask
	}
	return ^b.liveOut[i*32+int(r)] & b.Mask
}

// EntryDeadBits mirrors DeadOutBits for the state before the first
// instruction commits.
func (b *BitAnalysis) EntryDeadBits(r uint8) uint64 {
	if r == uint8(isa.RegZero) || r >= 32 {
		return 0
	}
	if !b.a.LiveIn[0].Has(r) {
		return b.Mask
	}
	return ^b.liveIn[r] & b.Mask
}

// DueOutBits returns the bits of register r that are crash-certain
// immediately after instruction i: flipping any of them in a committed
// state deterministically reaches a faulting consumer on every static
// path before any demand — in particular before any output — per the
// must-DUE analysis in propagate.go. The mask says nothing about
// pipeline state; callers must separately ensure no in-flight reader
// can have consumed the clean value (see DUEPruner's reorder-window
// gate). Crash-certain and dead masks are disjoint by construction
// (a due bit is demanded by its faulting consumer, hence live).
func (b *BitAnalysis) DueOutBits(i int, r uint8) uint64 {
	if r == uint8(isa.RegZero) || r >= 32 {
		return 0
	}
	return b.dueOut[i*32+int(r)]
}

// EntryDueBits mirrors DueOutBits for the state before the first
// instruction commits.
func (b *BitAnalysis) EntryDueBits(r uint8) uint64 {
	if r == uint8(isa.RegZero) || r >= 32 {
		return 0
	}
	return b.dueIn[r]
}
