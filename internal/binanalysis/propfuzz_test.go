package binanalysis_test

// Differential soundness fuzz for the fault-propagation verdicts:
// random straight-line programs with genuine memory traffic (aligned
// loads and stores into the global segment, exercising the static
// store→load model) are run through the full traced fault-injection
// pipeline, and for every sampled injection the pruner's three-way
// static verdict is checked against the simulator's classification:
// a DUE claim must simulate as Crash, a Masked claim as Masked, and a
// dynamically observed SDC must fall inside the static SDC-possible
// set (never on a pruned site). Both microarchitectures run, so the
// verdicts are exercised at XLEN 32 and 64 and at both ROB depths.

import (
	"testing"

	"sevsim/internal/binanalysis"
	"sevsim/internal/faultinj"
	"sevsim/internal/isa"
	"sevsim/internal/machine"
)

// fuzzPtr holds the global-segment base for the memory chunks; it sits
// outside fuzzRegs so ALU chunks never clobber it, keeping every
// generated access provably in bounds.
const fuzzPtr = uint8(isa.RegS0 + 1)

// fuzzGlobals is the byte size of the fuzzed program's global segment;
// generated offsets stay inside it at every access width.
const fuzzGlobals = 64

// buildMemFuzzProgram decodes fuzz bytes like buildFuzzProgram but
// lets each chunk pick a word-aligned store, a load, or an ALU
// instruction, so corrupted values flow through memory before being
// observed. All addresses are fuzzPtr-relative with in-bounds aligned
// offsets: the golden run is guaranteed fault-free, which is exactly
// the invariant the crash-certain masks assume.
func buildMemFuzzProgram(data []byte) []isa.Instr {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	var prog []isa.Instr
	for _, r := range fuzzRegs {
		hi := int32(int16(uint16(next()) | uint16(next())<<8))
		lo := int32(uint16(next()) | uint16(next())<<8)
		prog = append(prog,
			isa.I(isa.OpLui, r, 0, hi),
			isa.I(isa.OpOri, r, r, lo))
	}
	prog = append(prog, isa.I(isa.OpLui, fuzzPtr, 0, int32(machine.GlobalBase>>16)))
	nops := 0
	for len(data) >= 5 && nops < 24 {
		sel := next()
		rd := fuzzRegs[int(next())%len(fuzzRegs)]
		switch sel % 4 {
		case 0: // word store of a pool register
			off := int32(next()%(fuzzGlobals/4)) * 4
			next()
			prog = append(prog, isa.Store(isa.OpSw, rd, fuzzPtr, off))
		case 1: // load back into the pool (word or byte, signed or not)
			var op isa.Opcode
			var off int32
			switch next() % 3 {
			case 0:
				op, off = isa.OpLw, int32(next()%(fuzzGlobals/4))*4
			case 1:
				op, off = isa.OpLb, int32(next()%fuzzGlobals)
			default:
				op, off = isa.OpLbu, int32(next()%fuzzGlobals)
			}
			prog = append(prog, isa.Load(op, rd, fuzzPtr, off))
		default: // ALU chunk, as in buildFuzzProgram
			op := fuzzOps[int(next())%len(fuzzOps)]
			rs1 := fuzzRegs[int(next())%len(fuzzRegs)]
			if isImmOp(op) {
				imm := int32(int16(uint16(next()) | uint16(next())<<8))
				prog = append(prog, isa.I(op, rd, rs1, imm))
			} else {
				prog = append(prog, isa.R(op, rd, rs1, fuzzRegs[int(next())%len(fuzzRegs)]))
			}
		}
		prog = append(prog, isa.Out(rd))
		nops++
	}
	for _, r := range fuzzRegs {
		prog = append(prog, isa.Out(r))
	}
	prog = append(prog, isa.Halt())
	return prog
}

// FuzzPropagationVsSimulation cross-checks every static verdict the
// three-way pruner can emit against the concrete simulator on both
// marches.
func FuzzPropagationVsSimulation(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 1, 2, 3, 4, 5})
	f.Add([]byte{
		0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x80, 0, 0, 0x80, 1, 1, 1, 1,
		0, 0, 4, 0, 0, // sw
		1, 1, 0, 4, 0, // lw
		1, 2, 1, 9, 0, // lb
		2, 3, 1, 2, 0, // alu
	})
	rf, ok := faultinj.TargetByName("RF")
	if !ok {
		f.Fatal("RF target missing")
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		words := isa.Assemble(buildMemFuzzProgram(data))
		a, err := binanalysis.AnalyzeWords(words)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		for _, cfg := range machine.Configs() {
			exp, err := faultinj.NewTracedExperiment(cfg, &machine.Program{
				Name: "propfuzz", Code: words, Entry: machine.CodeBase, GlobalSize: fuzzGlobals,
			})
			if err != nil {
				t.Fatalf("%s: experiment: %v", cfg.Name, err)
			}
			pruner, err := binanalysis.NewDUEPruner(a, exp)
			if err != nil {
				t.Fatalf("%s: pruner: %v", cfg.Name, err)
			}
			injections, err := exp.Sample(rf, 50, 7)
			if err != nil {
				t.Fatalf("%s: sample: %v", cfg.Name, err)
			}
			for _, inj := range injections {
				kind, reason := pruner.PrunableKind(rf, inj)
				r := exp.Inject(rf, inj)
				switch kind {
				case faultinj.PruneDUE:
					if r.Outcome != faultinj.Crash {
						t.Errorf("%s: cycle %d bit %d claimed crash-certain (%s) but simulated as %s (%s)",
							cfg.Name, inj.Cycle, inj.Bit, reason, r.Outcome, r.Reason)
					}
				case faultinj.PruneReg, faultinj.PruneBit:
					if r.Outcome != faultinj.Masked {
						t.Errorf("%s: cycle %d bit %d claimed masked at %s granularity (%s) but simulated as %s (%s)",
							cfg.Name, inj.Cycle, inj.Bit, kind, reason, r.Outcome, r.Reason)
					}
				default:
					// SDC-possible: any dynamic outcome is admissible —
					// this arm IS the static SDC-possible set, so the
					// coherence claim "no observed SDC outside it" is the
					// two arms above never simulating as SDC.
					_ = r
				}
			}
		}
	})
}
