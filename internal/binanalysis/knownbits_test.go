package binanalysis

import (
	"testing"

	"sevsim/internal/compiler"
	"sevsim/internal/isa"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

func TestKnownBitsConstantPropagation(t *testing.T) {
	const xlen = 32
	m := xlenMask(xlen)
	a0, a1, a2 := uint8(isa.RegA0), uint8(isa.RegA1), uint8(isa.RegA2)
	prog := []isa.Instr{
		isa.I(isa.OpLui, a0, 0, 0x1234),     // a0 = 0x12340000
		isa.I(isa.OpOri, a0, a0, 0x5678),    // a0 = 0x12345678
		isa.I(isa.OpAddi, a1, a0, 1),        // a1 = 0x12345679
		isa.R(isa.OpXor, a2, a0, a1),        // a2 = known
		isa.I(isa.OpAndi, a2, a2, 0xff),     // a2 = low byte
		isa.Out(a2),
		isa.Halt(),
	}
	a, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Bits(xlen)
	// Before Out (index 5) every value is a compile-time constant.
	cases := []struct {
		reg  uint8
		want uint64
	}{
		{a0, 0x12345678},
		{a1, 0x12345679},
		{a2, (0x12345678 ^ 0x12345679) & 0xff},
	}
	for _, c := range cases {
		kb := b.KnownIn(5, c.reg)
		got, ok := kb.Const(m)
		if !ok {
			t.Fatalf("reg %d not fully known before out: %+v", c.reg, kb)
		}
		if got != c.want {
			t.Fatalf("reg %d known as %#x, want %#x", c.reg, got, c.want)
		}
	}
}

func TestKnownBitsJoinAtMerge(t *testing.T) {
	const xlen = 32
	a0, a1 := uint8(isa.RegA0), uint8(isa.RegA1)
	// Two paths assign a0 = 4 or a0 = 6: after the merge only the
	// disagreeing bit (bit 1) is unknown; bit 2 is known one, the rest
	// known zero.
	prog := []isa.Instr{
		/*0*/ isa.Branch(isa.OpBeq, a1, uint8(isa.RegZero), 2), // to 3
		/*1*/ isa.I(isa.OpAddi, a0, 0, 4),
		/*2*/ isa.Jal(0, 1), // over 3, to 4
		/*3*/ isa.I(isa.OpAddi, a0, 0, 6),
		/*4*/ isa.Out(a0),
		/*5*/ isa.Halt(),
	}
	a, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Bits(xlen)
	kb := b.KnownIn(4, a0)
	if kb.One != 1<<2 {
		t.Fatalf("known-one = %#x, want %#x", kb.One, uint64(1<<2))
	}
	wantZero := ^uint64(4 | 2) // everything except bits 1 and 2
	if kb.Zero != wantZero {
		t.Fatalf("known-zero = %#x, want %#x", kb.Zero, wantZero)
	}
}

func TestKbAddMatchesConcrete(t *testing.T) {
	const xlen = 32
	m := xlenMask(xlen)
	vals := []uint64{0, 1, 2, 0xff, 0x8000_0000, 0xffff_ffff, 0x1234_5678}
	for _, x := range vals {
		for _, y := range vals {
			got := kbAdd(kbConst(x, m), kbConst(y, m), 0, xlen)
			v, ok := got.Const(m)
			if !ok {
				t.Fatalf("add(%#x,%#x) not fully known: %+v", x, y, got)
			}
			if want := (x + y) & m; v != want {
				t.Fatalf("add(%#x,%#x) = %#x, want %#x", x, y, v, want)
			}
			sub := kbAdd(kbConst(x, m), kbNot(kbConst(y, m), m), 1, xlen)
			v, ok = sub.Const(m)
			if !ok {
				t.Fatalf("sub(%#x,%#x) not fully known: %+v", x, y, sub)
			}
			if want := (x - y) & m; v != want {
				t.Fatalf("sub(%#x,%#x) = %#x, want %#x", x, y, v, want)
			}
		}
	}
}

func TestKbShiftUnknownCountStillBoundsLowBits(t *testing.T) {
	const xlen = 32
	m := xlenMask(xlen)
	// Left-shifting a value with 16 known-zero low bits by an unknown
	// count keeps those low 16 bits known zero.
	a := KnownBits{Zero: ^uint64(0xffff_0000)}
	got := kbShift(isa.OpSll, a, kbTop(m), xlen)
	if got.Zero&0xffff != 0xffff {
		t.Fatalf("low bits not known zero after shift: %+v", got)
	}
}

func TestKbCompareDecidedByIntervals(t *testing.T) {
	const xlen = 32
	m := xlenMask(xlen)
	small := kbConst(3, m)
	big := KnownBits{Zero: ^uint64(0xff00), One: 0x100} // in [0x100, 0xff00]
	lt := kbCompare(small, big, false, xlen)
	if v, ok := lt.Const(m); !ok || v != 1 {
		t.Fatalf("3 < [0x100,0xff00] undecided: %+v", lt)
	}
	ge := kbCompare(big, small, false, xlen)
	if v, ok := ge.Const(m); !ok || v != 0 {
		t.Fatalf("[0x100,0xff00] < 3 undecided: %+v", ge)
	}
}

func TestDemandMasksByteTruncationAndShifts(t *testing.T) {
	const xlen = 32
	m := xlenMask(xlen)
	top := kbTop(m)
	// andi: only the immediate's bits of the source matter.
	d1, d2 := demandMasks(isa.I(isa.OpAndi, 4, 3, 0xff), m, top, top, xlen)
	if d1 != 0xff || d2 != 0 {
		t.Fatalf("andi demand = %#x,%#x want 0xff,0", d1, d2)
	}
	// srli by 24: only the top byte of the source can reach the result.
	d1, _ = demandMasks(isa.I(isa.OpSrli, 4, 3, 24), m, top, top, xlen)
	if d1 != 0xff00_0000 {
		t.Fatalf("srli-24 demand = %#x want 0xff000000", d1)
	}
	// slli by 24 under a full live mask: top live bits fall off.
	d1, _ = demandMasks(isa.I(isa.OpSlli, 4, 3, 24), m, top, top, xlen)
	if d1 != 0x0000_00ff {
		t.Fatalf("slli-24 demand = %#x want 0xff", d1)
	}
	// srai by 31 keeps only the sign bit relevant.
	d1, _ = demandMasks(isa.I(isa.OpSrai, 4, 3, 31), m, top, top, xlen)
	if d1 != 1<<31 {
		t.Fatalf("srai-31 demand = %#x want %#x", d1, uint64(1)<<31)
	}
	// Dead destination demands nothing anywhere.
	for _, in := range []isa.Instr{
		isa.R(isa.OpAdd, 4, 3, 5), isa.R(isa.OpDiv, 4, 3, 5),
		isa.R(isa.OpSll, 4, 3, 5), isa.R(isa.OpSltu, 4, 3, 5),
	} {
		d1, d2 := demandMasks(in, 0, top, top, xlen)
		if d1 != 0 || d2 != 0 {
			t.Fatalf("%v with dead dest demands %#x,%#x", in, d1, d2)
		}
	}
	// and with a known-zero other operand annihilates the demand.
	zeroed := KnownBits{Zero: ^uint64(0) | m} // all bits known zero
	d1, _ = demandMasks(isa.R(isa.OpAnd, 4, 3, 5), m, top, zeroed, xlen)
	if d1 != 0 {
		t.Fatalf("and with known-zero rs2 still demands %#x of rs1", d1)
	}
}

// TestDeadBitsSubsumeDeadRegisters checks the structural guarantee on
// a real compiled binary: wherever the register-granular analysis
// proves a register dead, the bit-granular one reports the full mask,
// and live registers' dead-bit masks never claim a bit the register
// analysis proves live... (they may claim more bits dead — that is the
// point — but never fewer than zero on live paths).
func TestDeadBitsSubsumeDeadRegisters(t *testing.T) {
	bench, err := workloads.ByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.CortexA15Like()
	xlen, nregs := cfg.CPU.XLEN, cfg.CPU.NumArchRegs
	for _, level := range compiler.Levels {
		prog, err := compiler.Compile(bench.Source(bench.TestSize), bench.Name, level,
			compiler.Target{XLEN: xlen, NumArchRegs: nregs})
		if err != nil {
			t.Fatal(err)
		}
		a, err := AnalyzeWords(prog.Code)
		if err != nil {
			t.Fatal(err)
		}
		b := a.Bits(xlen)
		for i := range a.CFG.Code {
			dead := a.DeadOut(i, nregs)
			for r := uint8(1); int(r) < nregs; r++ {
				db := b.DeadOutBits(i, r)
				if dead.Has(r) && db != b.Mask {
					t.Fatalf("%s idx %d: reg %d register-dead but bit mask %#x", level, i, r, db)
				}
			}
		}
	}
}

func TestBitsCachePerXLEN(t *testing.T) {
	prog := []isa.Instr{isa.Out(uint8(isa.RegA0)), isa.Halt()}
	a, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	b32a, b32b, b64 := a.Bits(32), a.Bits(32), a.Bits(64)
	if b32a != b32b {
		t.Fatal("Bits(32) not cached")
	}
	if b32a == b64 || b64.Mask != ^uint64(0) {
		t.Fatal("Bits(64) not distinct per XLEN")
	}
}
