package binanalysis

// Forward known-bits abstract interpretation: for every instruction and
// every architectural register, which bits of the register's value are
// provably 0 (or provably 1) on every fault-free execution reaching
// that instruction along any static path.
//
// The domain is the standard known-bits lattice (LLVM's KnownBits): a
// pair of masks (Zero, One) with Zero&One == 0; a bit set in neither
// mask is unknown. The join at control-flow merges intersects the two
// sides' knowledge, so the fixpoint descends a finite lattice and
// terminates. Transfer functions mirror the simulator's ALU (cpu.alu)
// exactly over the XLEN-masked value domain: physical register values
// are stored maskTo'd (zero-extended above XLEN), so bits at and above
// XLEN are always known zero.
//
// Soundness scope: the masks describe fault-free executions. The bit
// pruner may still use them to reason about a single-fault run, but
// only ever about registers OTHER than the one holding the flipped bit
// (see demandMasks in bitlive.go): under a single-bit fault whose
// corrupted value is consumed only by dead bits, every other register
// carries a fault-free value, so its masks hold.

import (
	"math/bits"

	"sevsim/internal/isa"
	"sevsim/internal/machine"
)

// KnownBits is the abstract value of one register at one program point.
type KnownBits struct {
	Zero uint64 // bits proven 0 on every path
	One  uint64 // bits proven 1 on every path
}

// xlenMask returns the value mask for the machine word width.
func xlenMask(xlen int) uint64 {
	if xlen >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<xlen - 1
}

// lowMask returns a mask of the n lowest bits.
func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<n - 1
}

// kbTop is the no-knowledge element for an XLEN-masked value: bits at
// and above XLEN are still known zero (writePhys masks every write).
func kbTop(m uint64) KnownBits { return KnownBits{Zero: ^m} }

// kbConst is the exact abstraction of one concrete (masked) value.
func kbConst(v, m uint64) KnownBits {
	v &= m
	return KnownBits{Zero: ^v, One: v}
}

// Const returns the concrete value when every bit inside the mask is
// known, and false otherwise.
func (k KnownBits) Const(m uint64) (uint64, bool) {
	if (k.Zero|k.One)&m == m {
		return k.One & m, true
	}
	return 0, false
}

// Compatible reports whether the concrete (masked) value v agrees with
// the known bits: no bit claimed zero is set and no bit claimed one is
// clear. This is the property the differential fuzz test checks.
func (k KnownBits) Compatible(v, m uint64) bool {
	v &= m
	return k.Zero&v == 0 && k.One&^v == 0
}

// kbJoin intersects the knowledge of two control-flow predecessors.
func kbJoin(a, b KnownBits) KnownBits {
	return KnownBits{Zero: a.Zero & b.Zero, One: a.One & b.One}
}

// kbNot is bitwise complement within the mask.
func kbNot(a KnownBits, m uint64) KnownBits {
	return KnownBits{Zero: a.One&m | ^m, One: a.Zero & m}
}

// kbBit reads one bit's knowledge: (value, known).
func kbBit(k KnownBits, bit uint64) (int, bool) {
	if k.Zero&bit != 0 {
		return 0, true
	}
	if k.One&bit != 0 {
		return 1, true
	}
	return 0, false
}

// kbState is the abstract machine state: one KnownBits per
// architectural register. Index 0 (the zero register) is pinned to the
// constant 0 and never written (DestReg treats r0 writes as no-ops).
type kbState [32]KnownBits

// kbTopState is the entry/unknown state: nothing known about any
// register except the hard-wired zero.
func kbTopState(m uint64) kbState {
	var st kbState
	for r := range st {
		st[r] = kbTop(m)
	}
	st[isa.RegZero] = kbConst(0, m)
	return st
}

// kbImmOperand abstracts the second ALU operand of an I-format
// instruction, mirroring cpu.alu's immediate handling: the logical
// operations and sltiu zero-extend the 16-bit immediate, everything
// else sign-extends it.
func kbImmOperand(in isa.Instr, m uint64) KnownBits {
	switch in.Op {
	case isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSltiu:
		return kbConst(uint64(uint16(in.Imm)), m)
	default:
		return kbConst(uint64(int64(in.Imm)), m)
	}
}

// signExtVal sign-extends a masked XLEN-bit value to 64 bits.
func signExtVal(v uint64, xlen int) int64 {
	if xlen >= 64 {
		return int64(v)
	}
	return int64(int32(uint32(v)))
}

// concreteALU evaluates an ALU opcode on fully known operands, exactly
// mirroring cpu.alu followed by writePhys's XLEN masking. Operand b is
// the already-resolved second operand (register value or immediate).
// The differential fuzz test FuzzKnownBitsVsInterp pins this mirror to
// the simulator bit for bit.
func concreteALU(op isa.Opcode, v1, b uint64, xlen int) uint64 {
	m := xlenMask(xlen)
	shiftMask := uint64(xlen - 1)
	v1 &= m
	b &= m
	s1, sb := signExtVal(v1, xlen), signExtVal(b, xlen)
	var r uint64
	switch op {
	case isa.OpAdd, isa.OpAddi:
		r = uint64(s1 + sb)
	case isa.OpSub:
		r = uint64(s1 - sb)
	case isa.OpMul:
		r = uint64(s1 * sb)
	case isa.OpDiv:
		switch {
		case sb == 0:
			r = ^uint64(0)
		case s1 == kbMinInt(xlen) && sb == -1:
			r = uint64(s1)
		default:
			r = uint64(s1 / sb)
		}
	case isa.OpRem:
		switch {
		case sb == 0:
			r = uint64(s1)
		case s1 == kbMinInt(xlen) && sb == -1:
			r = 0
		default:
			r = uint64(s1 % sb)
		}
	case isa.OpAnd, isa.OpAndi:
		r = v1 & b
	case isa.OpOr, isa.OpOri:
		r = v1 | b
	case isa.OpXor, isa.OpXori:
		r = v1 ^ b
	case isa.OpSll, isa.OpSlli:
		r = v1 << (b & shiftMask)
	case isa.OpSrl, isa.OpSrli:
		r = v1 >> (b & shiftMask)
	case isa.OpSra, isa.OpSrai:
		r = uint64(s1 >> (b & shiftMask))
	case isa.OpSlt, isa.OpSlti:
		if s1 < sb {
			r = 1
		}
	case isa.OpSltu, isa.OpSltiu:
		if v1 < b {
			r = 1
		}
	}
	return r & m
}

func kbMinInt(xlen int) int64 {
	if xlen >= 64 {
		return -1 << 63
	}
	return -1 << 31
}

// kbEval computes the abstract value an instruction writes to its
// destination register, given the known-bits state before it. Index i
// is the instruction's position in the code image (the link value of a
// jump is the exact constant CodeBase + 4*(i+1)).
//
// The switch must handle every isa opcode: the transfercover sevlint
// pass verifies that each isa.Op* constant appears in a case (or
// carries a //bitflow:conservative annotation), so a new opcode can
// never silently flow through with unsound bit semantics.
//
//bitflow:transfer
func kbEval(i int, in isa.Instr, st *kbState, xlen int) KnownBits {
	m := xlenMask(xlen)
	switch in.Op {
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem, isa.OpAnd,
		isa.OpOr, isa.OpXor, isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlt,
		isa.OpSltu:
		return kbALU(in.Op, st[in.Rs1], st[in.Rs2], xlen)
	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSlli,
		isa.OpSrli, isa.OpSrai, isa.OpSlti, isa.OpSltiu:
		return kbALU(in.Op, st[in.Rs1], kbImmOperand(in, m), xlen)
	case isa.OpLui:
		return kbConst(uint64(int64(in.Imm)<<16), m)
	case isa.OpLbu:
		// Byte load zero-extended: bits 8 and above are known zero.
		return KnownBits{Zero: ^uint64(0xff)}
	case isa.OpLb, isa.OpLw, isa.OpLd:
		// Sign-extended or full-width load: no bit is individually known.
		return kbTop(m)
	case isa.OpJal, isa.OpJalr:
		// Link value: the exact return address pc+4.
		return kbConst(machine.CodeBase+4*uint64(i)+4, m)
	case isa.OpSw, isa.OpSb, isa.OpSd, isa.OpBeq, isa.OpBne, isa.OpBlt,
		isa.OpBge, isa.OpBltu, isa.OpBgeu, isa.OpOut, isa.OpHalt, isa.OpNop:
		// No destination register; DestReg filters these before the
		// result is consumed.
		return kbTop(m)
	}
	// Illegal opcode: faults at decode, writes nothing.
	return kbTop(m)
}

// kbALU is the opcode-level transfer over resolved operands. Fully
// known operands evaluate concretely through the ALU mirror; partially
// known ones fall to per-opcode bit reasoning.
func kbALU(op isa.Opcode, a, b KnownBits, xlen int) KnownBits {
	m := xlenMask(xlen)
	if av, aok := a.Const(m); aok {
		if bv, bok := b.Const(m); bok {
			return kbConst(concreteALU(op, av, bv, xlen), m)
		}
	}
	switch op {
	case isa.OpAdd, isa.OpAddi:
		return kbAdd(a, b, 0, xlen)
	case isa.OpSub:
		return kbAdd(a, kbNot(b, m), 1, xlen)
	case isa.OpMul:
		// Trailing known zeros of the factors add up in the product.
		tz := kbTrailingZeros(a, xlen) + kbTrailingZeros(b, xlen)
		if tz > xlen {
			tz = xlen
		}
		return KnownBits{Zero: ^m | lowMask(tz)}
	case isa.OpDiv, isa.OpRem:
		return kbTop(m)
	case isa.OpAnd, isa.OpAndi:
		return KnownBits{Zero: a.Zero | b.Zero, One: a.One & b.One}
	case isa.OpOr, isa.OpOri:
		return KnownBits{Zero: a.Zero & b.Zero, One: a.One | b.One}
	case isa.OpXor, isa.OpXori:
		return KnownBits{
			Zero: (a.Zero & b.Zero) | (a.One & b.One),
			One:  (a.Zero & b.One) | (a.One & b.Zero),
		}
	case isa.OpSll, isa.OpSlli, isa.OpSrl, isa.OpSrli, isa.OpSra, isa.OpSrai:
		return kbShift(op, a, b, xlen)
	case isa.OpSlt, isa.OpSlti:
		return kbCompare(a, b, true, xlen)
	case isa.OpSltu, isa.OpSltiu:
		return kbCompare(a, b, false, xlen)
	}
	return kbTop(m)
}

// kbTrailingZeros counts the consecutive known-zero bits from bit 0.
func kbTrailingZeros(k KnownBits, xlen int) int {
	t := bits.TrailingZeros64(^k.Zero)
	if t > xlen {
		t = xlen
	}
	return t
}

// kbAdd is bit-serial known-bits addition with an initial carry
// (carry 1 + complemented b implements subtraction). The carry state
// is known-0, known-1, or unknown (-1); a bit of the sum is known only
// when both addend bits and the incoming carry are known.
func kbAdd(a, b KnownBits, carry int, xlen int) KnownBits {
	m := xlenMask(xlen)
	res := KnownBits{Zero: ^m}
	for i := 0; i < xlen; i++ {
		bit := uint64(1) << i
		av, ak := kbBit(a, bit)
		bv, bk := kbBit(b, bit)
		known, ones := 0, 0
		if ak {
			known++
			ones += av
		}
		if bk {
			known++
			ones += bv
		}
		if carry >= 0 {
			known++
			ones += carry
		}
		if known == 3 {
			if ones&1 == 1 {
				res.One |= bit
			} else {
				res.Zero |= bit
			}
			carry = ones >> 1
			continue
		}
		// Sum bit unknown. The outgoing carry is still known when two
		// inputs agree: two known ones force a carry, two known zeros
		// (known minus ones of them are zero) forbid one.
		switch {
		case ones >= 2:
			carry = 1
		case known-ones >= 2:
			carry = 0
		default:
			carry = -1
		}
	}
	return res
}

// kbShift joins the exact shift result over every count value
// compatible with the count operand's known low bits (the hardware
// masks the count with XLEN-1, so only those bits matter). A fully
// known count leaves a single candidate and the transfer is exact.
func kbShift(op isa.Opcode, a, b KnownBits, xlen int) KnownBits {
	cm := uint64(xlen - 1)
	res := kbTop(xlenMask(xlen))
	first := true
	for k := 0; k <= int(cm); k++ {
		ku := uint64(k)
		if ku&b.Zero&cm != 0 || ^ku&b.One&cm != 0 {
			continue // count k contradicts a known bit of the operand
		}
		s := kbShiftExact(op, a, k, xlen)
		if first {
			res, first = s, false
		} else {
			res = kbJoin(res, s)
		}
	}
	return res
}

// kbShiftExact shifts the known masks by a concrete count.
func kbShiftExact(op isa.Opcode, a KnownBits, k, xlen int) KnownBits {
	m := xlenMask(xlen)
	switch op {
	case isa.OpSll, isa.OpSlli:
		return KnownBits{
			Zero: (a.Zero&m)<<k&m | lowMask(k) | ^m,
			One:  (a.One & m) << k & m,
		}
	case isa.OpSrl, isa.OpSrli:
		return KnownBits{
			Zero: (a.Zero&m)>>k | ^(m >> k),
			One:  (a.One & m) >> k,
		}
	case isa.OpSra, isa.OpSrai:
		// Arithmetic shift replicates the sign bit: extend each mask's
		// knowledge of bit XLEN-1 upward before the logical shift.
		sign := uint64(1) << (xlen - 1)
		ze, oe := a.Zero&m, a.One&m
		if a.Zero&sign != 0 {
			ze |= ^m
		}
		if a.One&sign != 0 {
			oe |= ^m
		}
		return KnownBits{Zero: ze>>k&m | ^m, One: oe >> k & m}
	}
	return kbTop(m)
}

// kbFlipKnowledge exchanges the known-zero/known-one roles of one bit,
// abstracting v -> v ^ bit (used to reduce signed to unsigned order).
func kbFlipKnowledge(k KnownBits, bit uint64) KnownBits {
	z, o := k.Zero&bit, k.One&bit
	k.Zero = k.Zero&^bit | o
	k.One = k.One&^bit | z
	return k
}

// kbCompare abstracts slt/sltu: bits above 0 are always zero, and bit
// 0 is known when the operands' value intervals do not overlap. Signed
// comparison is reduced to unsigned by flipping the sign bit of both
// sides (x ^ signbit is monotone between the two orders).
func kbCompare(a, b KnownBits, signed bool, xlen int) KnownBits {
	m := xlenMask(xlen)
	res := KnownBits{Zero: ^m | m&^1}
	if signed {
		sign := uint64(1) << (xlen - 1)
		a = kbFlipKnowledge(a, sign)
		b = kbFlipKnowledge(b, sign)
	}
	minA, maxA := a.One&m, m&^a.Zero
	minB, maxB := b.One&m, m&^b.Zero
	switch {
	case maxA < minB:
		res.One |= 1 // a < b on every concretization
	case minA >= maxB:
		res.Zero |= 1 // a >= b on every concretization
	}
	return res
}

// computeKnownBits runs the forward fixpoint over the CFG and returns
// the per-instruction known-zero/known-one masks flattened as
// [instruction*32 + register]. The recorded state is the one in effect
// BEFORE the instruction executes.
//
// Reachability: the entry block starts at top; function entries and
// return points receive state through the call and return edges BuildCFG
// already materializes. Blocks never reached by the fixpoint
// (unreachable code) report top. If the binary contains an indirect
// transfer with statically unknown successors (Block.Unknown), every
// block degrades to top: such a jump could land anywhere, so no
// interblock fact survives. The compiler never emits one (jalr is only
// the return idiom), so compiled workloads keep full precision.
func computeKnownBits(g *CFG, xlen int) (kz, ko []uint64) {
	n := len(g.Code)
	nb := len(g.Blocks)
	m := xlenMask(xlen)
	top := kbTopState(m)

	blockIn := make([]kbState, nb)
	visited := make([]bool, nb)

	anyUnknown := false
	for bi := range g.Blocks {
		if g.Blocks[bi].Unknown {
			anyUnknown = true
			break
		}
	}
	if anyUnknown {
		for bi := range blockIn {
			blockIn[bi] = top
			visited[bi] = true
		}
	} else {
		work := make([]int, 0, nb)
		inWork := make([]bool, nb)
		push := func(bi int) {
			if !inWork[bi] {
				inWork[bi] = true
				work = append(work, bi)
			}
		}
		entry := g.BlockOf[0]
		entrySt := top
		// The machine initializes the stack pointer to StackTop before
		// the first instruction (machine.New), so the entry state knows
		// it exactly. This anchors sp-relative spill/reload addresses
		// for the static memory model; the single-fault rule still
		// holds — consumers only ever use these facts about registers
		// other than the one being judged.
		entrySt[isa.RegSP] = kbConst(machine.StackTop, m)
		blockIn[entry] = entrySt
		visited[entry] = true
		push(entry)
		for len(work) > 0 {
			bi := work[len(work)-1]
			work = work[:len(work)-1]
			inWork[bi] = false
			b := g.Blocks[bi]
			st := blockIn[bi]
			for i := b.Start; i < b.End; i++ {
				kbApply(&st, i, g.Code[i], xlen)
			}
			for _, s := range b.Succs {
				if !visited[s] {
					visited[s] = true
					blockIn[s] = st
					push(s)
					continue
				}
				joined := blockIn[s]
				for r := range joined {
					joined[r] = kbJoin(joined[r], st[r])
				}
				if joined != blockIn[s] {
					blockIn[s] = joined
					push(s)
				}
			}
		}
	}

	// Refine block-entry states to per-instruction states.
	kz = make([]uint64, n*32)
	ko = make([]uint64, n*32)
	for bi := range g.Blocks {
		b := g.Blocks[bi]
		st := top
		if visited[bi] {
			st = blockIn[bi]
		}
		for i := b.Start; i < b.End; i++ {
			for r := 0; r < 32; r++ {
				kz[i*32+r] = st[r].Zero
				ko[i*32+r] = st[r].One
			}
			kbApply(&st, i, g.Code[i], xlen)
		}
	}
	return kz, ko
}

// kbApply advances the state across one instruction.
func kbApply(st *kbState, i int, in isa.Instr, xlen int) {
	v := kbEval(i, in, st, xlen)
	if d := def(in); d != 0xff {
		st[d] = v
	}
}
