package binanalysis

import (
	"fmt"
	"sort"

	"sevsim/internal/cpu"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
)

// RFPruner proves sampled register-file faults masked without
// simulating them, by combining the static dead-register sets with the
// golden run's commit trace.
//
// The argument: a flip at cycle c lands in the committed machine state
// as of c (the commit hook fires before the cycle's pipeline step, so
// commits recorded at cycle c happen after the flip). Reconstructing
// the committed rename map at c tells us which architectural register a
// the flipped physical register p currently holds. If a is statically
// dead after the last committed instruction — no static path from that
// point reads a before redefining it — then no execution, including any
// wrong-path instructions the front end speculatively fetches (every
// speculative path is also a static path, and squashed work only
// perturbs timing within the 2x timeout budget), can consume the
// corrupted value. The fault is provably Masked.
//
// Conservative exclusions, each returning "not prunable":
//   - physical register 0: permanently maps the zero register;
//   - physical registers not in the committed rename map: they are
//     free, or in flight as a speculative destination whose liveness
//     the committed-state analysis cannot bound;
//   - a last-commit PC outside the code image.
//
// RFPruner is safe for concurrent use.
type RFPruner struct {
	a            *Analysis
	events       []cpu.CommitEvent
	xlen         int
	numPhys      int
	numArch      int
	goldenCycles uint64

	// RAT snapshots every ckptInterval events; query replay touches at
	// most ckptInterval events past a snapshot.
	ckpts [][]uint16
}

const ckptInterval = 1024

// NewRFPruner builds the pruner for one traced experiment. The
// analysis must come from the same binary the experiment runs.
func NewRFPruner(a *Analysis, exp *faultinj.Experiment) (*RFPruner, error) {
	if exp.Trace == nil {
		return nil, fmt.Errorf("binanalysis: experiment has no commit trace (use NewTracedExperiment)")
	}
	cfg := exp.Config.CPU
	p := &RFPruner{
		a:            a,
		events:       exp.Trace,
		xlen:         cfg.XLEN,
		numPhys:      cfg.NumPhysRegs,
		numArch:      cfg.NumArchRegs,
		goldenCycles: exp.GoldenCycles,
	}
	// Initial committed rename map is the identity over the
	// architectural registers (see cpu.NewCore).
	rat := make([]uint16, p.numArch)
	for a := range rat {
		rat[a] = uint16(a)
	}
	for k, ev := range p.events {
		if k%ckptInterval == 0 {
			p.ckpts = append(p.ckpts, append([]uint16(nil), rat...))
		}
		if ev.DestArch != cpu.NoDest && int(ev.DestArch) < p.numArch {
			rat[ev.DestArch] = ev.DestPhys
		}
	}
	return p, nil
}

// idxOf maps a committed PC to its instruction index, or -1 when the
// PC lies outside the code image.
func (p *RFPruner) idxOf(pc uint64) int {
	if pc < machine.CodeBase || (pc-machine.CodeBase)%4 != 0 {
		return -1
	}
	idx := int((pc - machine.CodeBase) / 4)
	if idx >= len(p.a.CFG.Code) {
		return -1
	}
	return idx
}

// stateAt returns the number of events committed strictly before an
// injection at cycle c (the flip precedes same-cycle commits).
func (p *RFPruner) stateAt(c uint64) int {
	return sort.Search(len(p.events), func(i int) bool { return p.events[i].Cycle >= c })
}

// deadAfter returns the dead-register set in effect once k events have
// committed, and false when the state is unanalyzable (PC outside the
// image).
func (p *RFPruner) deadAfter(k int) (RegSet, bool) {
	if k == 0 {
		return p.a.EntryDead(p.numArch), true
	}
	idx := p.idxOf(p.events[k-1].PC)
	if idx < 0 {
		return 0, false
	}
	return p.a.DeadOut(idx, p.numArch), true
}

// ratAt reconstructs the committed rename map after k events.
func (p *RFPruner) ratAt(k int) []uint16 {
	base := k / ckptInterval
	rat := append([]uint16(nil), p.ckpts[base]...)
	for _, ev := range p.events[base*ckptInterval : k] {
		if ev.DestArch != cpu.NoDest && int(ev.DestArch) < p.numArch {
			rat[ev.DestArch] = ev.DestPhys
		}
	}
	return rat
}

// Prunable implements faultinj.Pruner for the RF target.
func (p *RFPruner) Prunable(t faultinj.Target, inj faultinj.Injection) (bool, string) {
	if t.Name() != "RF" {
		return false, "not an RF injection"
	}
	phys := uint16(inj.Bit / uint64(p.xlen))
	if phys == 0 {
		return false, "phys 0 holds the zero register"
	}
	k := p.stateAt(inj.Cycle)
	dead, ok := p.deadAfter(k)
	if !ok {
		return false, "last commit PC outside code image"
	}
	rat := p.ratAt(k)
	for a := 1; a < p.numArch; a++ {
		if rat[a] == phys {
			if dead.Has(uint8(a)) {
				return true, fmt.Sprintf("phys %d maps dead arch %d after commit %d", phys, a, k)
			}
			return false, fmt.Sprintf("phys %d maps live arch %d", phys, a)
		}
	}
	return false, fmt.Sprintf("phys %d not in committed rename map", phys)
}

// RFBound is the static vulnerability bound for the RF target of one
// (config, binary) pair: the fraction of the (cycle x bit) injection
// space the pruner proves Masked lower-bounds the Masked rate, so its
// complement upper-bounds the AVF.
//
// The Reg-prefixed fields carry the register-granular bound alongside
// the headline one. For an RFPruner the pairs coincide; for a
// BitPruner the headline fields are the (tighter) bit-granular bound
// and the Reg fields record what register granularity alone proves —
// the gap is the precision bought by known-bits + bit liveness.
type RFBound struct {
	MaskedLB      float64 // provably-masked fraction of the space
	AVFUpperBound float64 // 1 - MaskedLB
	PrunableBits  uint64  // provably-masked (cycle x bit) points
	SpaceBits     uint64  // total (cycle x bit) points

	RegMaskedLB     float64 // register-granular provably-masked fraction
	RegPrunableBits uint64  // register-granular provably-masked points

	// Three-way refinement (DUEPruner; zero for the Masked-only
	// pruners): DueLB lower-bounds the crash-certain (DUE) outcome
	// fraction and SDCUpperBound caps what remains for SDC once both
	// proof classes are subtracted. The provably-masked and
	// provably-DUE point sets are disjoint, so the three fractions
	// partition the space: MaskedLB + DueLB + SDCUpperBound == 1.
	DueLB           float64
	SDCUpperBound   float64
	DuePrunableBits uint64 // provably-DUE (cycle x bit) points
}

// walkIntervals visits the commit trace as a sequence of
// constant-state cycle intervals: the committed state after k events
// is in effect for every injection cycle in (cycle of event k-1, cycle
// of event k], clipped to the golden run's cycle count. f receives
// each interval's event count k and its width in cycles.
func (p *RFPruner) walkIntervals(f func(k int, cycles uint64)) {
	g := p.goldenCycles
	if g == 0 {
		return
	}
	last := g - 1
	c0 := uint64(0) // first injection cycle governed by the current state
	k := 0
	for k < len(p.events) {
		cy := p.events[k].Cycle
		j := k
		for j < len(p.events) && p.events[j].Cycle == cy {
			j++
		}
		hi := cy
		if hi > last {
			hi = last
		}
		if c0 <= hi {
			f(k, hi-c0+1)
		}
		c0 = cy + 1
		k = j
	}
	if c0 <= last {
		f(len(p.events), g-c0)
	}
}

// Bound computes the static RF bound by interval-walking the commit
// trace: within an interval every bit of every dead mapped register is
// provably masked. The per-cycle criterion is exactly Prunable's, so
// the bound equals the pruned fraction of an exhaustive campaign.
func (p *RFPruner) Bound() RFBound {
	b := RFBound{SpaceBits: p.goldenCycles * uint64(p.numPhys) * uint64(p.xlen)}
	if b.SpaceBits == 0 {
		return b
	}
	var sum uint64
	p.walkIntervals(func(k int, cycles uint64) {
		dead, ok := p.deadAfter(k)
		if !ok {
			return
		}
		// Every architectural register is always mapped to exactly one
		// physical register, so each dead register contributes XLEN
		// prunable bits regardless of which physical slot holds it.
		sum += uint64(dead.Count()) * uint64(p.xlen) * cycles
	})
	b.PrunableBits = sum
	b.MaskedLB = float64(sum) / float64(b.SpaceBits)
	b.AVFUpperBound = 1 - b.MaskedLB
	b.RegPrunableBits = sum
	b.RegMaskedLB = b.MaskedLB
	b.SDCUpperBound = b.AVFUpperBound // no DUE proof at this tier
	return b
}
