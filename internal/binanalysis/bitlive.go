package binanalysis

// Backward bit-level liveness: for every instruction and every
// architectural register, which BITS of the register can still affect
// any architecturally visible outcome (memory, output, control flow,
// or a value that eventually reaches one of those). The result
// strictly refines register liveness: a register bit can only be live
// if the whole register is live, and dead registers contribute full
// dead-bit masks.
//
// The transfer is demand-driven: an instruction whose destination has
// live mask L demands from each source operand only the bits that can
// influence the L-masked result. Demands may be sharpened using the
// known-bits state of the OTHER operand (e.g. `and rd, rs1, rs2`
// demands of rs1 only L &^ knownZero(rs2): where rs2 is provably zero,
// rs1's bit is annihilated). Using the other operand is sound under
// the single-fault model the pruner assumes: when asking whether a
// flipped bit of register r is dead, every register other than r holds
// its fault-free value, so fault-free known-bits facts about it hold.
// A register's own known bits are never used to shrink its own demand —
// the flip being judged is precisely a violation of that register's
// abstract state.
//
// Instructions with a dead destination demand nothing: on this core
// ALU latencies are fixed per opcode class (latFor), results reach the
// ROB regardless of value, and ALU ops cannot trap, so a corrupted
// operand consumed only by a dead destination cannot perturb timing or
// control. Address operands of loads/stores are always fully demanded
// (a corrupted address faults or touches the wrong line), as are
// branch operands (control) and Out operands (output).

import (
	"math/bits"

	"sevsim/internal/isa"
)

// demandMasks computes, for one instruction whose destination value is
// needed at bit positions L (already intersected with the XLEN mask m),
// the bit masks demanded of Rs1 (d1) and Rs2 (d2). kb1 and kb2 are the
// known-bits states of Rs1 and Rs2 before the instruction; per the
// single-fault rule above, d1 may consult only kb2 and d2 only kb1.
//
// For instructions with no register sources the returned masks are
// meaningless and ignored by the caller (SourceRegs reports none).
// Store instructions follow SourceRegs' convention: operand 1 is the
// base address register (Rs1), operand 2 the stored register (Rd).
//
// The switch must handle every isa opcode; the transfercover sevlint
// pass enforces this.
//
//bitflow:transfer
func demandMasks(in isa.Instr, L uint64, kb1, kb2 KnownBits, xlen int) (d1, d2 uint64) {
	m := xlenMask(xlen)
	cm := uint64(xlen - 1)
	L &= m
	switch in.Op {
	case isa.OpAdd, isa.OpAddi, isa.OpSub, isa.OpMul:
		// Carries/partial products propagate upward only: bits of the
		// result at or below the highest live bit depend on source bits
		// at or below it, never above.
		d := lowMask(bits.Len64(L))
		return d & m, d & m
	case isa.OpDiv, isa.OpRem:
		// Every quotient/remainder bit may depend on every operand bit.
		if L == 0 {
			return 0, 0
		}
		return m, m
	case isa.OpAnd:
		return L &^ kb2.Zero & m, L &^ kb1.Zero & m
	case isa.OpAndi:
		return L & uint64(uint16(in.Imm)) & m, 0
	case isa.OpOr:
		return L &^ kb2.One & m, L &^ kb1.One & m
	case isa.OpOri:
		return L &^ uint64(uint16(in.Imm)) & m, 0
	case isa.OpXor, isa.OpXori:
		return L, L
	case isa.OpSll, isa.OpSrl, isa.OpSra:
		d1 = shiftDemand(in.Op, L, kb2, xlen)
		if L != 0 {
			d2 = cm // only the masked count bits matter
		}
		return d1, d2
	case isa.OpSlli, isa.OpSrli, isa.OpSrai:
		k := int(uint64(in.Imm) & cm)
		return shiftDemandExact(in.Op, L, k, xlen), 0
	case isa.OpSlt, isa.OpSltu:
		if L&1 != 0 {
			return m, m
		}
		return 0, 0
	case isa.OpSlti, isa.OpSltiu:
		if L&1 != 0 {
			return m, 0
		}
		return 0, 0
	case isa.OpLb, isa.OpLw, isa.OpLd, isa.OpLbu:
		// Base address: any bit flips the accessed location.
		return m, 0
	case isa.OpSb:
		// Operand 2 is the stored register; only the stored byte's bits
		// are architecturally captured (forwarding truncates through
		// extendLoad, and memory writes exactly MemSize bytes).
		return m, 0xff & m
	case isa.OpSw:
		return m, 0xffff_ffff & m
	case isa.OpSd:
		return m, m
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		return m, m
	case isa.OpJalr:
		return m, 0 // indirect target
	case isa.OpOut:
		return m, 0
	case isa.OpJal, isa.OpLui, isa.OpHalt, isa.OpNop:
		return 0, 0
	}
	// Illegal opcode: conservatively demand everything.
	return m, m
}

// shiftDemand joins the exact per-count demand over every shift count
// compatible with the count operand's known low bits.
func shiftDemand(op isa.Opcode, L uint64, count KnownBits, xlen int) uint64 {
	if L == 0 {
		return 0
	}
	cm := uint64(xlen - 1)
	var d uint64
	for k := 0; k <= int(cm); k++ {
		ku := uint64(k)
		if ku&count.Zero&cm != 0 || ^ku&count.One&cm != 0 {
			continue
		}
		d |= shiftDemandExact(op, L, k, xlen)
	}
	return d
}

// shiftDemandExact maps live result bits back through a shift by a
// concrete count: result bit j of `sll` comes from source bit j-k, of
// `srl`/`sra` from source bit j+k, and `sra` additionally replicates
// the sign bit into every vacated high position.
func shiftDemandExact(op isa.Opcode, L uint64, k, xlen int) uint64 {
	m := xlenMask(xlen)
	L &= m
	switch op {
	case isa.OpSll, isa.OpSlli:
		return (L >> k) & m
	case isa.OpSrl, isa.OpSrli:
		return (L << k) & m
	case isa.OpSra, isa.OpSrai:
		d := (L << k) & m
		// Live bits shifted past the top draw from the sign bit.
		if k > 0 && L&^(m>>k) != 0 {
			d |= uint64(1) << (xlen - 1)
		}
		return d
	}
	return m
}

// computeBitLiveness runs the backward fixpoint and returns flattened
// per-instruction live-bit masks [instruction*32 + register]: liveIn
// is the mask live immediately before the instruction, liveOut
// immediately after. kz/ko are the known-bits masks from
// computeKnownBits (indexed the same way), consulted for demand
// refinement of the other operand.
//
// The fixpoint runs twice when the static memory model helps: the
// first pass treats every stored bit as demanded (sd nil); its load
// destination live masks feed storeDemands (propagate.go), whose
// refined store-data demands — sound over-approximations derived from
// the FIRST pass's liveness, which dominates the second's — drive a
// second pass in which a store demands of its data register only the
// bits some live load may actually observe. The returned sd is the
// mask the final pass used (nil when no store was refinable), so the
// must-DUE analysis can apply the identical demand transfer.
func computeBitLiveness(g *CFG, kz, ko []uint64, xlen int) (liveIn, liveOut, sd []uint64) {
	liveIn, liveOut = bitLivenessFixpoint(g, kz, ko, nil, xlen)
	if sd = storeDemands(g, kz, ko, liveOut, xlen); sd != nil {
		liveIn, liveOut = bitLivenessFixpoint(g, kz, ko, sd, xlen)
	}
	return liveIn, liveOut, sd
}

// bitLivenessFixpoint is one run of the backward fixpoint under a
// fixed store-data demand refinement (nil: full store windows).
//
// Unlike register liveness there are no block gen/kill summaries: the
// demand an instruction places on its sources depends on its
// destination's live mask, which changes between iterations, so each
// block is re-walked backward from its current out-state until the
// fixpoint settles. The masks only grow (union transfer over a finite
// domain), so termination is guaranteed.
func bitLivenessFixpoint(g *CFG, kz, ko, sd []uint64, xlen int) (liveIn, liveOut []uint64) {
	n := len(g.Code)
	nb := len(g.Blocks)
	m := xlenMask(xlen)

	blockIn := make([][32]uint64, nb)
	blockOut := make([][32]uint64, nb)

	// Predecessor lists from successor edges.
	preds := make([][]int, nb)
	for bi := range g.Blocks {
		for _, s := range g.Blocks[bi].Succs {
			preds[s] = append(preds[s], bi)
		}
	}

	work := make([]int, 0, nb)
	inWork := make([]bool, nb)
	push := func(bi int) {
		if !inWork[bi] {
			inWork[bi] = true
			work = append(work, bi)
		}
	}
	// Seed all blocks in reverse order so exit blocks drain first.
	for bi := nb - 1; bi >= 0; bi-- {
		push(bi)
	}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[bi] = false
		b := g.Blocks[bi]

		var out [32]uint64
		if b.Unknown {
			// Indirect transfer with unknown successors: everything may
			// be consumed downstream.
			for r := 1; r < 32; r++ {
				out[r] = m
			}
		}
		for _, s := range b.Succs {
			for r := 1; r < 32; r++ {
				out[r] |= blockIn[s][r]
			}
		}
		blockOut[bi] = out
		cur := out
		for i := b.End - 1; i >= b.Start; i-- {
			walkOne(g, i, &cur, kz, ko, sd, xlen)
		}
		if cur != blockIn[bi] {
			blockIn[bi] = cur
			for _, p := range preds[bi] {
				push(p)
			}
		}
	}

	// Refinement sweep: per-instruction masks from block-out states.
	liveIn = make([]uint64, n*32)
	liveOut = make([]uint64, n*32)
	for bi := range g.Blocks {
		b := g.Blocks[bi]
		cur := blockOut[bi]
		for i := b.End - 1; i >= b.Start; i-- {
			for r := 0; r < 32; r++ {
				liveOut[i*32+r] = cur[r]
			}
			walkOne(g, i, &cur, kz, ko, sd, xlen)
			for r := 0; r < 32; r++ {
				liveIn[i*32+r] = cur[r]
			}
		}
	}
	return liveIn, liveOut
}

// walkOne applies the backward transfer of a single instruction. sd,
// when non-nil, post-masks the data demand of stores with the static
// memory model's refined per-store demand.
func walkOne(g *CFG, i int, cur *[32]uint64, kz, ko, sd []uint64, xlen int) {
	m := xlenMask(xlen)
	in := g.Code[i]
	var L uint64
	if d := def(in); d != 0xff {
		L = cur[d]
		cur[d] = 0
	}
	s1, s2 := in.SourceRegs()
	if s1 == 0xff && s2 == 0xff {
		return
	}
	kb := func(r uint8) KnownBits {
		if r >= 32 {
			return kbTop(m)
		}
		return KnownBits{Zero: kz[i*32+int(r)], One: ko[i*32+int(r)]}
	}
	d1, d2 := demandMasks(in, L, kb(s1), kb(s2), xlen)
	if sd != nil && in.Op.IsStore() {
		d2 &= sd[i]
	}
	if s1 != 0xff && s1 != uint8(isa.RegZero) {
		cur[s1] |= d1 & m
	}
	if s2 != 0xff && s2 != uint8(isa.RegZero) {
		cur[s2] |= d2 & m
	}
}
