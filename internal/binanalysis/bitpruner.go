package binanalysis

import (
	"fmt"
	"math/bits"

	"sevsim/internal/faultinj"
)

// BitPruner generalizes RFPruner to bit granularity: an RF injection
// is provably Masked not only when the flipped physical register maps
// a dead architectural register, but also when it maps a LIVE register
// whose specific flipped bit is statically dead (bit-level liveness
// joined with known-bits, see BitAnalysis).
//
// The soundness argument extends RFPruner's. A flip at cycle c lands
// in the committed state as of c; the committed rename map names the
// architectural register a holding the flipped physical register, and
// the last committed PC names the program point. DeadOutBits(point, a)
// is the set of bits of a that no static path from the point can
// propagate to memory, output, or control flow — where demand
// refinement consulted known-bits facts, those facts concern registers
// other than a, which carry fault-free values under the single-fault
// model, so the refinement holds on the faulted run too. Speculative
// wrong-path work is squashed without architectural effect and cannot
// stretch timing past the 2x budget (fixed ALU latencies), exactly as
// in the register-granular argument.
//
// BitPruner is safe for concurrent use.
type BitPruner struct {
	*RFPruner
	bits *BitAnalysis
}

// NewBitPruner builds the bit-granular pruner for one traced
// experiment. The analysis must come from the same binary the
// experiment runs; the bit-granular fixpoints are computed (or
// re-used) via the Analysis.Bits cache, so building pruners for many
// cells of the same (bench, level) shares one analysis.
func NewBitPruner(a *Analysis, exp *faultinj.Experiment) (*BitPruner, error) {
	rp, err := NewRFPruner(a, exp)
	if err != nil {
		return nil, err
	}
	return &BitPruner{RFPruner: rp, bits: a.Bits(rp.xlen)}, nil
}

// deadBitsAfter returns the dead-bit mask of architectural register a
// once k events have committed (0 when the state is unanalyzable).
func (p *BitPruner) deadBitsAfter(k int, a uint8) uint64 {
	if k == 0 {
		return p.bits.EntryDeadBits(a)
	}
	idx := p.idxOf(p.events[k-1].PC)
	if idx < 0 {
		return 0
	}
	return p.bits.DeadOutBits(idx, a)
}

// PrunableKind implements faultinj.KindPruner for the RF target.
func (p *BitPruner) PrunableKind(t faultinj.Target, inj faultinj.Injection) (faultinj.PruneKind, string) {
	if t.Name() != "RF" {
		return faultinj.PruneNone, "not an RF injection"
	}
	phys := uint16(inj.Bit / uint64(p.xlen))
	bit := inj.Bit % uint64(p.xlen)
	if phys == 0 {
		return faultinj.PruneNone, "phys 0 holds the zero register"
	}
	k := p.stateAt(inj.Cycle)
	dead, ok := p.deadAfter(k)
	if !ok {
		return faultinj.PruneNone, "last commit PC outside code image"
	}
	rat := p.ratAt(k)
	for a := 1; a < p.numArch; a++ {
		if rat[a] != phys {
			continue
		}
		if dead.Has(uint8(a)) {
			return faultinj.PruneReg, fmt.Sprintf("phys %d maps dead arch %d after commit %d", phys, a, k)
		}
		if p.deadBitsAfter(k, uint8(a))&(1<<bit) != 0 {
			return faultinj.PruneBit, fmt.Sprintf("phys %d maps arch %d whose bit %d is dead after commit %d", phys, a, bit, k)
		}
		return faultinj.PruneNone, fmt.Sprintf("phys %d maps arch %d with live bit %d", phys, a, bit)
	}
	return faultinj.PruneNone, fmt.Sprintf("phys %d not in committed rename map", phys)
}

// Prunable implements faultinj.Pruner by delegating to PrunableKind,
// shadowing the embedded register-granular implementation.
func (p *BitPruner) Prunable(t faultinj.Target, inj faultinj.Injection) (bool, string) {
	kind, reason := p.PrunableKind(t, inj)
	return kind != faultinj.PruneNone, reason
}

// Bound computes the bit-granular static RF bound, recording the
// register-granular bound alongside it in the Reg fields. Because
// DeadOutBits contains the full mask for every register DeadOut
// reports dead, the headline bound dominates the register one on every
// cell by construction.
func (p *BitPruner) Bound() RFBound {
	b := RFBound{SpaceBits: p.goldenCycles * uint64(p.numPhys) * uint64(p.xlen)}
	if b.SpaceBits == 0 {
		return b
	}
	var bitSum, regSum uint64
	p.walkIntervals(func(k int, cycles uint64) {
		dead, ok := p.deadAfter(k)
		if !ok {
			return
		}
		regSum += uint64(dead.Count()) * uint64(p.xlen) * cycles
		var n uint64
		for a := 1; a < p.numArch; a++ {
			n += uint64(bits.OnesCount64(p.deadBitsAfter(k, uint8(a))))
		}
		bitSum += n * cycles
	})
	b.PrunableBits = bitSum
	b.MaskedLB = float64(bitSum) / float64(b.SpaceBits)
	b.AVFUpperBound = 1 - b.MaskedLB
	b.RegPrunableBits = regSum
	b.RegMaskedLB = float64(regSum) / float64(b.SpaceBits)
	b.SDCUpperBound = b.AVFUpperBound // no DUE proof at this tier
	return b
}
