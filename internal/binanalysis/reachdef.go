package binanalysis

import "math/bits"

// Forward reaching-definitions to fixpoint, plus the def->use chains
// and static value-lifetime intervals derived from them.
//
// A definition site is an instruction with an architectural destination
// register. The lifetime of a definition is the shortest-path distance
// (in instructions, over CFG edges) from the definition to the furthest
// use it reaches — the static analogue of the def->last-use intervals
// that dynamic dead-value analyses measure, and the quantity the paper
// community correlates with register-file vulnerability (long-lived
// values are ACE for more cycles).

// bitvec is a dense bitset over definition-site ids.
type bitvec []uint64

func newBitvec(n int) bitvec { return make(bitvec, (n+63)/64) }

func (v bitvec) set(i int)      { v[i/64] |= 1 << (i % 64) }
func (v bitvec) has(i int) bool { return v[i/64]&(1<<(i%64)) != 0 }

func (v bitvec) orWith(o bitvec) bool {
	changed := false
	for i := range v {
		n := v[i] | o[i]
		if n != v[i] {
			v[i] = n
			changed = true
		}
	}
	return changed
}

func (v bitvec) copyFrom(o bitvec) {
	copy(v, o)
}

// Lifetime is one definition's static value-lifetime record.
type Lifetime struct {
	DefIdx int   // instruction index of the definition
	Reg    uint8 // defined architectural register
	Uses   int   // number of use sites this definition reaches
	// Dist is the shortest-path distance to the furthest reached use; 0
	// when the definition reaches no use (a statically dead write).
	Dist int
}

// reachingDefs computes def->use chains and lifetimes.
func reachingDefs(g *CFG) []Lifetime {
	n := len(g.Code)

	// Enumerate definition sites.
	defID := make([]int, n) // instruction -> def id, -1 when none
	var defs []Lifetime
	for i := range defID {
		defID[i] = -1
	}
	for i, in := range g.Code {
		if d := def(in); d != 0xff {
			defID[i] = len(defs)
			defs = append(defs, Lifetime{DefIdx: i, Reg: d})
		}
	}
	nd := len(defs)
	if nd == 0 {
		return defs
	}

	// Per-register definition-site masks (for kill sets).
	defsOf := make([]bitvec, 32)
	for r := range defsOf {
		defsOf[r] = newBitvec(nd)
	}
	for id, d := range defs {
		defsOf[d.Reg].set(id)
	}

	// Block-level gen/kill and in/out fixpoint.
	nb := len(g.Blocks)
	gen := make([]bitvec, nb)
	kill := make([]bitvec, nb)
	in := make([]bitvec, nb)
	out := make([]bitvec, nb)
	for bi, b := range g.Blocks {
		gen[bi] = newBitvec(nd)
		kill[bi] = newBitvec(nd)
		in[bi] = newBitvec(nd)
		out[bi] = newBitvec(nd)
		for i := b.Start; i < b.End; i++ {
			id := defID[i]
			if id < 0 {
				continue
			}
			r := defs[id].Reg
			for w := range kill[bi] {
				kill[bi][w] |= defsOf[r][w]
				gen[bi][w] &^= defsOf[r][w]
			}
			gen[bi].set(id)
		}
	}
	changed := true
	for changed {
		changed = false
		for bi, b := range g.Blocks {
			for _, s := range b.Succs {
				if in[s].orWith(out[bi]) {
					changed = true
				}
			}
			// out = gen | (in &^ kill)
			for w := range out[bi] {
				n := gen[bi][w] | (in[bi][w] &^ kill[bi][w])
				if n != out[bi][w] {
					out[bi][w] = n
					changed = true
				}
			}
		}
	}

	// Resolve each use to its reaching definitions.
	useOf := make([][]int, nd) // def id -> use instruction indices
	cur := newBitvec(nd)
	for bi, b := range g.Blocks {
		cur.copyFrom(in[bi])
		for i := b.Start; i < b.End; i++ {
			u := uses(g.Code[i])
			for r := uint8(0); r < 32; r++ {
				if !u.Has(r) {
					continue
				}
				for w, word := range cur {
					word &= defsOf[r][w]
					for word != 0 {
						id := w*64 + bits.TrailingZeros64(word)
						useOf[id] = append(useOf[id], i)
						word &= word - 1
					}
				}
			}
			if id := defID[i]; id >= 0 {
				r := defs[id].Reg
				for w := range cur {
					cur[w] &^= defsOf[r][w]
				}
				cur.set(id)
			}
		}
	}

	// Shortest-path distances def -> reached uses; lifetime = max.
	distCap := n + 1
	dist := make([]int, n)
	queue := make([]int, 0, 64)
	succBuf := make([]int, 0, 8)
	for id := range defs {
		usesHere := useOf[id]
		defs[id].Uses = len(usesHere)
		if len(usesHere) == 0 {
			continue
		}
		want := make(map[int]bool, len(usesHere))
		for _, u := range usesHere {
			want[u] = true
		}
		for i := range dist {
			dist[i] = -1
		}
		start := defs[id].DefIdx
		dist[start] = 0
		queue = append(queue[:0], start)
		remaining := len(want)
		maxD := 0
		for qi := 0; qi < len(queue) && remaining > 0; qi++ {
			i := queue[qi]
			d := dist[i]
			if d >= distCap {
				break
			}
			succBuf = g.InstrSuccs(i, succBuf[:0])
			for _, s := range succBuf {
				if dist[s] >= 0 {
					continue
				}
				dist[s] = d + 1
				if want[s] {
					if d+1 > maxD {
						maxD = d + 1
					}
					remaining--
				}
				// A reached use whose instruction redefines the register
				// would stop the value's propagation, but for a shortest
				// -path over-approximation of the interval we keep
				// expanding; the distance to already-found uses is exact.
				queue = append(queue, s)
			}
		}
		defs[id].Dist = maxD
	}
	return defs
}

// LifetimeHistogram buckets lifetimes into power-of-two distance bins:
// bin k holds definitions with Dist in [2^(k-1)+1 .. 2^k] (bin 0 is
// Dist 0, i.e. dead writes; bin 1 is Dist 1). Returns the bucket upper
// bounds and counts.
func LifetimeHistogram(defs []Lifetime) (bounds []int, counts []int) {
	maxD := 0
	for _, d := range defs {
		if d.Dist > maxD {
			maxD = d.Dist
		}
	}
	nb := 1
	for ub := 1; ub < maxD; ub *= 2 {
		nb++
	}
	nb++ // bin 0 for dead writes
	bounds = make([]int, nb)
	counts = make([]int, nb)
	bounds[0] = 0
	ub := 1
	for k := 1; k < nb; k++ {
		bounds[k] = ub
		ub *= 2
	}
	for _, d := range defs {
		k := 0
		if d.Dist > 0 {
			k = 1
			for bounds[k] < d.Dist {
				k++
			}
		}
		counts[k]++
	}
	return bounds, counts
}
