package binanalysis

// Backward architectural-register liveness to fixpoint, at basic-block
// granularity with a per-instruction refinement pass.
//
// A register is live at a point when some static path from that point
// reads it before any redefinition; dead (un-ACE) otherwise. The
// analysis is a may-analysis over the union of static paths, so its
// dead sets are conservative with respect to any dynamic execution —
// including wrong-path (speculative) execution, because every
// speculatively fetched path is also a static path of the binary.

// liveness computes per-instruction live-in/live-out sets.
func liveness(g *CFG) (liveIn, liveOut []RegSet) {
	nb := len(g.Blocks)
	blockIn := make([]RegSet, nb)
	blockOut := make([]RegSet, nb)

	// Per-block gen (upward-exposed uses) and kill (defs) summaries.
	gen := make([]RegSet, nb)
	kill := make([]RegSet, nb)
	for bi, b := range g.Blocks {
		var g1, k1 RegSet
		for i := b.Start; i < b.End; i++ {
			in := g.Code[i]
			g1 |= uses(in) &^ k1
			if d := def(in); d != 0xff {
				k1 = k1.With(d)
			}
		}
		gen[bi] = g1
		kill[bi] = k1
	}

	// Worklist fixpoint. Seed every block so unreachable code is still
	// analyzed (the invariant checker and sevanalyze dumps cover the
	// whole binary, not just the reachable slice).
	work := make([]int, 0, nb)
	inWork := make([]bool, nb)
	push := func(bi int) {
		if !inWork[bi] {
			inWork[bi] = true
			work = append(work, bi)
		}
	}
	preds := make([][]int, nb)
	for bi, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], bi)
		}
	}
	for bi := nb - 1; bi >= 0; bi-- {
		push(bi)
	}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[bi] = false
		b := g.Blocks[bi]
		var out RegSet
		if b.Unknown {
			out = AllRegs
		}
		for _, s := range b.Succs {
			out |= blockIn[s]
		}
		blockOut[bi] = out
		in := gen[bi] | (out &^ kill[bi])
		if in != blockIn[bi] {
			blockIn[bi] = in
			for _, p := range preds[bi] {
				push(p)
			}
		}
	}

	// Refine block sets to per-instruction sets in one backward sweep.
	n := len(g.Code)
	liveIn = make([]RegSet, n)
	liveOut = make([]RegSet, n)
	for bi, b := range g.Blocks {
		cur := blockOut[bi]
		for i := b.End - 1; i >= b.Start; i-- {
			liveOut[i] = cur
			in := g.Code[i]
			if d := def(in); d != 0xff {
				cur = cur.Without(d)
			}
			cur |= uses(in)
			liveIn[i] = cur
		}
	}
	return liveIn, liveOut
}
