package binanalysis

import (
	"fmt"
	"math/bits"
	"sort"

	"sevsim/internal/faultinj"
)

// DUEPruner is the three-way pruner tier: on top of BitPruner's
// provably-Masked classification it proves injections CRASH-CERTAIN
// (DUE) from the must-DUE fault-propagation analysis (propagate.go),
// classifying them as deterministic crashes without simulating them.
//
// The static side of the argument is DueOutBits': a due bit of the
// architectural register a mapped by the flipped physical register,
// taken at the last committed instruction, reaches a faulting consumer
// on every static path — so in particular on the golden continuation —
// before any instruction can demand it for a value, address, branch,
// or output. The crash masks rely only on fault-free alignment and
// address-ceiling invariants, never on the judged register's own known
// bits, and addrCeilOK re-validates the ceiling against the concrete
// program layout before the tier switches on.
//
// The microarchitectural side needs one extra gate the Masked tiers do
// not: a crash VERDICT (unlike a masked one) is falsified if any
// reader consumes the clean pre-flip value. An instruction at trace
// position j can have renamed — and read the physical register —
// before the flip at state k only while it shares the reorder window
// with position k: position j allocates its ROB entry no earlier than
// the commit of position j-ROBSize (ROB occupancy is bounded and both
// commit and rename are in order), and that commit happens at or after
// the flip cycle once j-k >= ROBSize. The pruner therefore claims DUE
// only when the FIRST golden reader of the register lies at least
// ROBSize commits past the flip point; the faulting consumer is that
// reader or later, so it renames — and reads the corrupted value —
// strictly after the flip. Squashed wrong-path work cannot rescue the
// value either: the flipped physical register stays architecturally
// mapped until the crash, so no speculative destination reallocates it.
//
// Timing: the proven crash surfaces when the faulting consumer
// commits, near its golden commit cycle; as with the Masked tiers,
// squashed work perturbs timing only within the 2x timeout budget, so
// the run registers as a Crash, not a Timeout. The soundness test
// re-simulates every DUE-pruned injection and asserts the crash.
//
// DUEPruner is safe for concurrent use.
type DUEPruner struct {
	*BitPruner
	robSize int
	dueOK   bool // address-ceiling layout validated

	// readers[a] lists, ascending, the trace positions whose
	// instruction reads architectural register a (positions with a PC
	// outside the code image appear in every register's list).
	readers [32][]int32
}

// NewDUEPruner builds the three-way pruner for one traced experiment.
// The analysis must come from the same binary the experiment runs. The
// DUE tier disables itself (falling back to BitPruner behavior) when
// the program's memory layout exceeds the address ceiling the crash
// masks assume; the Masked tiers are unaffected.
func NewDUEPruner(a *Analysis, exp *faultinj.Experiment) (*DUEPruner, error) {
	bp, err := NewBitPruner(a, exp)
	if err != nil {
		return nil, err
	}
	p := &DUEPruner{
		BitPruner: bp,
		robSize:   exp.Config.CPU.ROBSize,
		dueOK:     addrCeilOK(len(a.CFG.Code), exp.Program.GlobalSize),
	}
	for k, ev := range p.events {
		idx := p.idxOf(ev.PC)
		if idx < 0 {
			for r := 1; r < 32; r++ {
				p.readers[r] = append(p.readers[r], int32(k))
			}
			continue
		}
		s1, s2 := a.CFG.Code[idx].SourceRegs()
		if s1 != 0xff && s1 < 32 {
			p.readers[s1] = append(p.readers[s1], int32(k))
		}
		if s2 != 0xff && s2 < 32 && s2 != s1 {
			p.readers[s2] = append(p.readers[s2], int32(k))
		}
	}
	return p, nil
}

// dueBitsAfter returns the crash-certain bit mask of architectural
// register a once k events have committed (0 when unanalyzable).
func (p *DUEPruner) dueBitsAfter(k int, a uint8) uint64 {
	if k == 0 {
		return p.bits.EntryDueBits(a)
	}
	idx := p.idxOf(p.events[k-1].PC)
	if idx < 0 {
		return 0
	}
	return p.bits.DueOutBits(idx, a)
}

// windowClear reports whether the first golden reader of architectural
// register a at or past state k lies at least ROBSize commits away, so
// no in-flight instruction can have read the register before the flip.
// A register with no reader ahead reports false: the must-DUE masks
// guarantee a faulting reader exists whenever a due bit is set, so
// this only suppresses (never unsoundly admits) a claim.
func (p *DUEPruner) windowClear(k int, a uint8) bool {
	rs := p.readers[a]
	i := sort.Search(len(rs), func(i int) bool { return int(rs[i]) >= k })
	return i < len(rs) && int(rs[i])-k >= p.robSize
}

// PrunableKind implements faultinj.KindPruner for the RF target with
// the full three-way tier order: dead register, dead bit, due bit.
func (p *DUEPruner) PrunableKind(t faultinj.Target, inj faultinj.Injection) (faultinj.PruneKind, string) {
	if t.Name() != "RF" {
		return faultinj.PruneNone, "not an RF injection"
	}
	phys := uint16(inj.Bit / uint64(p.xlen))
	bit := inj.Bit % uint64(p.xlen)
	if phys == 0 {
		return faultinj.PruneNone, "phys 0 holds the zero register"
	}
	k := p.stateAt(inj.Cycle)
	dead, ok := p.deadAfter(k)
	if !ok {
		return faultinj.PruneNone, "last commit PC outside code image"
	}
	rat := p.ratAt(k)
	for a := 1; a < p.numArch; a++ {
		if rat[a] != phys {
			continue
		}
		if dead.Has(uint8(a)) {
			return faultinj.PruneReg, fmt.Sprintf("phys %d maps dead arch %d after commit %d", phys, a, k)
		}
		if p.deadBitsAfter(k, uint8(a))&(1<<bit) != 0 {
			return faultinj.PruneBit, fmt.Sprintf("phys %d maps arch %d whose bit %d is dead after commit %d", phys, a, bit, k)
		}
		if p.dueOK && p.dueBitsAfter(k, uint8(a))&(1<<bit) != 0 && p.windowClear(k, uint8(a)) {
			return faultinj.PruneDUE, fmt.Sprintf("phys %d maps arch %d whose bit %d is crash-certain after commit %d", phys, a, bit, k)
		}
		return faultinj.PruneNone, fmt.Sprintf("phys %d maps arch %d with live bit %d", phys, a, bit)
	}
	return faultinj.PruneNone, fmt.Sprintf("phys %d not in committed rename map", phys)
}

// Prunable implements faultinj.Pruner by delegating to PrunableKind,
// shadowing the embedded bit-granular implementation.
func (p *DUEPruner) Prunable(t faultinj.Target, inj faultinj.Injection) (bool, string) {
	kind, reason := p.PrunableKind(t, inj)
	return kind != faultinj.PruneNone, reason
}

// Bound computes the three-way static RF bound. The per-interval
// criterion is exactly PrunableKind's — dead bits first, then due bits
// gated by the reorder window — so DuePrunableBits equals the DUE-
// pruned count of an exhaustive campaign, and the Masked fields match
// BitPruner's bound exactly.
func (p *DUEPruner) Bound() RFBound {
	b := RFBound{SpaceBits: p.goldenCycles * uint64(p.numPhys) * uint64(p.xlen)}
	if b.SpaceBits == 0 {
		return b
	}
	var bitSum, regSum, dueSum uint64
	p.walkIntervals(func(k int, cycles uint64) {
		dead, ok := p.deadAfter(k)
		if !ok {
			return
		}
		regSum += uint64(dead.Count()) * uint64(p.xlen) * cycles
		var nb, nd uint64
		for a := 1; a < p.numArch; a++ {
			db := p.deadBitsAfter(k, uint8(a))
			nb += uint64(bits.OnesCount64(db))
			if p.dueOK && p.windowClear(k, uint8(a)) {
				nd += uint64(bits.OnesCount64(p.dueBitsAfter(k, uint8(a)) &^ db))
			}
		}
		bitSum += nb * cycles
		dueSum += nd * cycles
	})
	b.PrunableBits = bitSum
	b.MaskedLB = float64(bitSum) / float64(b.SpaceBits)
	b.AVFUpperBound = 1 - b.MaskedLB
	b.RegPrunableBits = regSum
	b.RegMaskedLB = float64(regSum) / float64(b.SpaceBits)
	b.DuePrunableBits = dueSum
	b.DueLB = float64(dueSum) / float64(b.SpaceBits)
	b.SDCUpperBound = 1 - b.MaskedLB - b.DueLB
	return b
}
