// Package binanalysis is the binary-level ACE/liveness analyzer: it
// reconstructs a control-flow graph from assembled SEV instructions,
// runs backward architectural-register liveness and forward reaching
// definitions to fixpoint, and derives from them
//
//   - per-instruction dead-register sets (a register is dead at a point
//     when no path from that point reads it before redefining it),
//   - static value-lifetime intervals (def -> furthest reached use),
//   - a binary invariant checker (use-before-def at entry, stack-pointer
//     balance across calls, control-transfer targets in range), and
//   - a statically sound injection pruner plus Masked/AVF bounds for
//     the physical register file, combining the static dead sets with a
//     golden run's commit trace.
//
// The analyzer is the static counterpart of the statistical fault
// injector: ACE analysis (Mukherjee et al.) classifies a bit un-ACE
// whenever the value holding it is dead, which lower-bounds the Masked
// rate and upper-bounds the AVF without simulating a single fault.
package binanalysis

import (
	"math/bits"
	"strings"

	"sevsim/internal/isa"
)

// RegSet is a set of architectural registers (0..31) as a bitmask.
type RegSet uint32

// AllRegs is the universe: every architectural register the ISA can
// name. Using the full 32-register universe regardless of the machine
// configuration is conservative; dead sets are intersected with the
// configured register count by consumers.
const AllRegs RegSet = ^RegSet(0)

// Has reports whether register r is in the set.
func (s RegSet) Has(r uint8) bool { return r < 32 && s&(1<<r) != 0 }

// With returns the set with register r added.
func (s RegSet) With(r uint8) RegSet {
	if r >= 32 {
		return s
	}
	return s | 1<<r
}

// Without returns the set with register r removed.
func (s RegSet) Without(r uint8) RegSet {
	if r >= 32 {
		return s
	}
	return s &^ (1 << r)
}

// Count returns the number of registers in the set.
func (s RegSet) Count() int { return bits.OnesCount32(uint32(s)) }

// String lists the registers by conventional name.
func (s RegSet) String() string {
	if s == 0 {
		return "{}"
	}
	var names []string
	for r := uint8(0); r < 32; r++ {
		if s.Has(r) {
			names = append(names, isa.RegName(r))
		}
	}
	return "{" + strings.Join(names, ",") + "}"
}

// uses returns the registers an instruction reads.
func uses(in isa.Instr) RegSet {
	var s RegSet
	s1, s2 := in.SourceRegs()
	if s1 != 0xff {
		s = s.With(s1)
	}
	if s2 != 0xff {
		s = s.With(s2)
	}
	return s
}

// def returns the architectural register the instruction writes, or
// 0xff when it writes none (register 0 is hard-wired and never a def).
func def(in isa.Instr) uint8 { return in.DestReg() }
