package binanalysis

import (
	"sync"

	"sevsim/internal/isa"
)

// Analysis bundles every static result for one binary.
type Analysis struct {
	CFG     *CFG
	LiveIn  []RegSet // per-instruction live-in (registers read before redefinition on some path)
	LiveOut []RegSet // per-instruction live-out
	// Lifetimes holds one record per definition site: how far (in
	// instructions over CFG edges) the defined value travels to its
	// furthest reached use.
	Lifetimes []Lifetime

	// bits caches the bit-granular analyses by XLEN so every consumer
	// of the same Analysis (pruner construction across cells, the
	// sevanalyze bounds table) pays for the fixpoints once.
	bitsMu sync.Mutex
	bits   map[int]*BitAnalysis
}

// Analyze reconstructs the CFG of an assembled binary and runs the
// liveness and reaching-definitions fixpoints over it.
func Analyze(code []isa.Instr) (*Analysis, error) {
	g, err := BuildCFG(code)
	if err != nil {
		return nil, err
	}
	liveIn, liveOut := liveness(g)
	return &Analysis{
		CFG:       g,
		LiveIn:    liveIn,
		LiveOut:   liveOut,
		Lifetimes: reachingDefs(g),
	}, nil
}

// AnalyzeWords decodes an assembled code image and analyzes it; the
// entry point for consumers holding a machine.Program.
func AnalyzeWords(words []uint32) (*Analysis, error) {
	code := make([]isa.Instr, len(words))
	for i, w := range words {
		code[i] = isa.Decode(w)
	}
	return Analyze(code)
}

// DeadOut returns the registers provably dead immediately after
// instruction i, restricted to the machine's nregs architectural
// registers. Register 0 is never reported dead: the zero register's
// physical mapping is permanent and architecturally read-as-zero, so
// its bits are handled by the injector, not the pruner.
func (a *Analysis) DeadOut(i, nregs int) RegSet {
	dead := ^a.LiveOut[i]
	if nregs < 32 {
		dead &= (1 << nregs) - 1
	}
	return dead.Without(isa.RegZero)
}

// EntryLive returns the registers live at program entry, i.e. read on
// some path before any definition. For a well-formed binary this holds
// no caller-saved registers (see CheckInvariants).
func (a *Analysis) EntryLive() RegSet { return a.LiveIn[0] }

// EntryDead mirrors DeadOut for the moment before the first
// instruction commits: registers whose initial machine state is
// provably never read.
func (a *Analysis) EntryDead(nregs int) RegSet {
	dead := ^a.LiveIn[0]
	if nregs < 32 {
		dead &= (1 << nregs) - 1
	}
	return dead.Without(isa.RegZero)
}
