package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name string
	N    int
}

func mustAppend(t *testing.T, w *Writer, kind string, v any) {
	t.Helper()
	if err := w.Append(kind, v); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAndScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, w, "cell", payload{Name: fmt.Sprintf("r%d", i), N: i})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i, r := range got {
		if r.Kind != "cell" {
			t.Errorf("record %d kind %q", i, r.Kind)
		}
		var p payload
		if err := json.Unmarshal(r.Data, &p); err != nil {
			t.Fatal(err)
		}
		if p.N != i {
			t.Errorf("record %d payload N=%d", i, p.N)
		}
	}
}

func TestReopenReplaysAndAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, "a", payload{N: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != "a" {
		t.Fatalf("replay after reopen: %+v", recs)
	}
	mustAppend(t, w, "b", payload{N: 2})
	w.Close()

	recs, err = Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Kind != "b" {
		t.Fatalf("after second append: %+v", recs)
	}
}

// TestTornTailDropped simulates a crash mid-write: the journal must
// replay the valid prefix and Open must compact the torn tail away.
func TestTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, w, "cell", payload{N: i})
	}
	w.Close()

	// Tear the last record: drop its final 7 bytes.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	recs, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("torn journal replayed %d records, want 4", len(recs))
	}

	// Open compacts: the file on disk afterwards is exactly the valid
	// prefix, and appending continues cleanly.
	w, recs, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("open after tear replayed %d records, want 4", len(recs))
	}
	mustAppend(t, w, "cell", payload{N: 99})
	w.Close()
	recs, err = Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("after compaction + append: %d records, want 5", len(recs))
	}
	var p payload
	if err := json.Unmarshal(recs[4].Data, &p); err != nil {
		t.Fatal(err)
	}
	if p.N != 99 {
		t.Errorf("last record N=%d, want 99", p.N)
	}
}

// TestChecksumMismatchEndsReplay flips one byte inside a record's
// payload: the replay must stop at the corrupt record.
func TestChecksumMismatchEndsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, "cell", payload{Name: "aaaa", N: 1})
	mustAppend(t, w, "cell", payload{Name: "bbbb", N: 2})
	mustAppend(t, w, "cell", payload{Name: "cccc", N: 3})
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(string(data), "bbbb", "bXbb", 1)
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records past a corrupt one, want 1", len(recs))
	}
}

// TestSegmentRotation forces a tiny segment limit and checks that
// records span multiple segment files and replay in order.
func TestSegmentRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _, err := Open(path, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		mustAppend(t, w, "cell", payload{Name: "record-payload", N: i})
	}
	w.Close()

	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("expected rotated segment %s.1: %v", path, err)
	}
	recs, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), n)
	}
	for i, r := range recs {
		var p payload
		if err := json.Unmarshal(r.Data, &p); err != nil {
			t.Fatal(err)
		}
		if p.N != i {
			t.Fatalf("record %d out of order: N=%d", i, p.N)
		}
	}

	// Reopen appends to the last segment, not a new one.
	w, recs, err = Open(path, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("reopen replayed %d, want %d", len(recs), n)
	}
	mustAppend(t, w, "cell", payload{N: n})
	w.Close()
	recs, _ = Scan(path)
	if len(recs) != n+1 {
		t.Fatalf("after reopen append: %d records", len(recs))
	}
}

// TestTornMiddleSegmentRejected: a corrupt record in a non-final
// segment cannot be silently skipped — later records would replay
// against a hole.
func TestTornMiddleSegmentRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _, err := Open(path, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, w, "cell", payload{Name: "record-payload", N: i})
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(path); err == nil {
		t.Fatal("expected an error for a torn non-final segment")
	}
}

func TestRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _, err := Open(path, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, w, "cell", payload{Name: "record-payload", N: i})
	}
	w.Close()
	if err := Remove(path); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{path, path + ".1"} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s still exists after Remove", p)
		}
	}
	// Removing a journal that never existed is fine.
	if err := Remove(filepath.Join(t.TempDir(), "nope.jsonl")); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := AtomicWriteFile(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2" {
		t.Fatalf("content %q", data)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
	// The replaced file carries the intended 0o644, not the 0o600 the
	// temp file was born with (the Chmod must happen, and before the
	// fsync so the bits are durable).
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != 0o644 {
		t.Errorf("file mode %v, want -rw-r--r--", got)
	}
}

func TestMkdirAllSync(t *testing.T) {
	root := t.TempDir()
	nested := filepath.Join(root, "a", "b", "c")
	if err := MkdirAllSync(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(nested)
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDir() {
		t.Fatalf("%s is not a directory", nested)
	}
	// Idempotent on an existing tree, like os.MkdirAll.
	if err := MkdirAllSync(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	// A file in the way surfaces the MkdirAll error.
	blocked := filepath.Join(root, "file")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MkdirAllSync(filepath.Join(blocked, "sub"), 0o755); err == nil {
		t.Fatal("MkdirAllSync through a regular file did not fail")
	}
}

// TestTornTailCompactionAfterRotation tears the final record of the
// *last rotated segment* — the crash window of a process killed
// mid-append after one or more rotations. Open must compact only that
// segment's tail, leave every earlier segment byte-intact, replay the
// full valid prefix, and append into the compacted segment without
// opening a new one.
func TestTornTailCompactionAfterRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _, err := Open(path, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		mustAppend(t, w, "cell", payload{Name: "record-payload", N: i})
	}
	w.Close()

	// Find the last segment and how the records are distributed.
	last := path
	segs := 1
	for {
		next := fmt.Sprintf("%s.%d", path, segs)
		if _, err := os.Stat(next); err != nil {
			break
		}
		last = next
		segs++
	}
	if segs < 3 {
		t.Fatalf("expected at least 3 segments, got %d", segs)
	}
	lastRecs, err := Scan(last)
	if err != nil {
		t.Fatal(err)
	}
	if len(lastRecs) == 0 {
		t.Fatal("last segment is empty; cannot tear a record")
	}
	frozen, err := os.ReadFile(fmt.Sprintf("%s.%d", path, segs-2))
	if err != nil {
		t.Fatal(err)
	}

	// Tear the last record mid-write: drop its trailing bytes.
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	w, recs, err := Open(path, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n-1 {
		t.Fatalf("replayed %d records after tear, want %d", len(recs), n-1)
	}
	for i, r := range recs {
		var p payload
		if err := json.Unmarshal(r.Data, &p); err != nil {
			t.Fatal(err)
		}
		if p.N != i {
			t.Fatalf("record %d out of order after compaction: N=%d", i, p.N)
		}
	}

	// The earlier segment was not touched by the compaction.
	after, err := os.ReadFile(fmt.Sprintf("%s.%d", path, segs-2))
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(frozen) {
		t.Fatal("compaction rewrote an intact earlier segment")
	}

	// The compacted tail segment holds exactly its valid prefix, and
	// appends continue into it rather than a new segment.
	compacted, err := Scan(last)
	if err != nil {
		t.Fatal(err)
	}
	if len(compacted) != len(lastRecs)-1 {
		t.Fatalf("compacted segment has %d records, want %d", len(compacted), len(lastRecs)-1)
	}
	mustAppend(t, w, "cell", payload{N: n})
	w.Close()
	if _, err := os.Stat(fmt.Sprintf("%s.%d", path, segs)); err == nil {
		t.Fatal("append after compaction rotated to a new segment")
	}
	recs, err = Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("after compaction + append: %d records, want %d", len(recs), n)
	}
	var p payload
	if err := json.Unmarshal(recs[n-1].Data, &p); err != nil {
		t.Fatal(err)
	}
	if p.N != n {
		t.Errorf("appended record N=%d, want %d", p.N, n)
	}
}
