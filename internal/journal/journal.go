// Package journal provides the durable, append-only record log behind
// crash-tolerant campaign runs. Each record is one checksummed JSONL
// line, fsync'd before Append returns, so a study killed at any point
// (SIGKILL, power loss) preserves every record whose Append completed.
//
// A journal is a sequence of segment files: the base path holds the
// first segment and rotation continues in "<path>.1", "<path>.2", ...
// once a segment exceeds the size limit. Segments are only ever
// appended to; rotation creates the next segment and fsyncs the
// directory, so the segment chain itself survives crashes.
//
// Recovery reads the longest valid prefix: a torn tail (a partial line
// from a write cut short by a crash) or a checksum mismatch ends the
// replay at the last intact record. Open additionally compacts a torn
// final segment by atomically rewriting its valid prefix (temp file in
// the same directory, fsync, rename), so the tail never grows back into
// later records.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Record is one replayed journal entry.
type Record struct {
	Kind string
	Data json.RawMessage
}

// line is the on-disk shape of one record.
type line struct {
	K   string          `json:"k"`
	Sum string          `json:"sum"`
	V   json.RawMessage `json:"v"`
}

// checksum covers the kind and the serialized payload, so a record
// cannot silently change type or content.
func checksum(kind string, data []byte) string {
	h := crc32.NewIEEE()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(data)
	return fmt.Sprintf("%08x", h.Sum32())
}

// DefaultSegmentBytes bounds a segment before rotation. Records are a
// few hundred bytes, so the default keeps segments comfortably
// readable while never rotating in laptop-scale studies.
const DefaultSegmentBytes = 64 << 20

// maxLineBytes bounds a single record line during replay.
const maxLineBytes = 16 << 20

// Options tunes a journal writer.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// reaches this size (<= 0: DefaultSegmentBytes).
	SegmentBytes int64
}

// Writer appends records to the journal. Safe for concurrent use.
type Writer struct {
	base  string
	limit int64

	// guarded by mu (the methods, not the fields, synchronize)
	mu   chan struct{} // 1-buffered semaphore used as a mutex
	f    *os.File
	seg  int
	size int64
}

// segmentPath names segment i of the journal at base.
func segmentPath(base string, i int) string {
	if i == 0 {
		return base
	}
	return fmt.Sprintf("%s.%d", base, i)
}

// scanSegment reads one segment file, returning the valid records, the
// raw bytes of the valid prefix, and whether a torn or corrupt tail was
// dropped. A missing file returns os.ErrNotExist.
func scanSegment(path string) (recs []Record, valid []byte, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	var off int64
	for sc.Scan() {
		raw := sc.Bytes()
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			return recs, valid, true, nil
		}
		if l.Sum != checksum(l.K, l.V) {
			return recs, valid, true, nil
		}
		recs = append(recs, Record{Kind: l.K, Data: l.V})
		off += int64(len(raw)) + 1
		valid = append(valid, raw...)
		valid = append(valid, '\n')
	}
	if sc.Err() != nil {
		// An over-long or unreadable tail is treated as torn, not fatal:
		// the valid prefix is still intact on disk.
		return recs, valid, true, nil
	}
	// A file that does not end in '\n' has a torn final line that the
	// scanner surfaced as a (checksum-failing) record or as no record;
	// either way it was handled above. Detect a trailing partial line
	// that happens to be valid JSON-free garbage of zero length.
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, false, err
	}
	if fi.Size() != off {
		torn = true
	}
	return recs, valid, torn, nil
}

// Scan replays the journal at path: every segment in order, stopping at
// the first torn or corrupt record. A journal that does not exist
// replays as empty.
func Scan(path string) ([]Record, error) {
	recs, _, _, err := scanAll(path)
	return recs, err
}

// scanAll replays all segments, returning the records, the index of the
// last existing segment (-1 when none), and whether that segment has a
// torn tail. A torn segment that is not the last one is an error: by
// construction appends are sequential, so later segments after a torn
// one mean the journal was tampered with or mis-assembled.
func scanAll(path string) (recs []Record, lastSeg int, torn bool, err error) {
	lastSeg = -1
	for seg := 0; ; seg++ {
		rs, _, segTorn, err := scanSegment(segmentPath(path, seg))
		if errors.Is(err, os.ErrNotExist) {
			break
		}
		if err != nil {
			return nil, -1, false, err
		}
		if torn { // a previous segment was torn yet this one exists
			return nil, -1, false, fmt.Errorf("journal %s: segment %d is corrupt but segment %d exists", path, seg-1, seg)
		}
		recs = append(recs, rs...)
		lastSeg, torn = seg, segTorn
	}
	return recs, lastSeg, torn, nil
}

// Open replays the journal at path and opens it for appending. A torn
// final segment is first compacted: its valid prefix is rewritten to a
// temp file in the same directory, fsync'd, and renamed over the
// segment, so recovery itself is crash-safe. The returned records are
// the replayed valid prefix (nil for a fresh journal).
func Open(path string, opts Options) (*Writer, []Record, error) {
	limit := opts.SegmentBytes
	if limit <= 0 {
		limit = DefaultSegmentBytes
	}
	recs, lastSeg, torn, err := scanAll(path)
	if err != nil {
		return nil, nil, err
	}
	seg := lastSeg
	if seg < 0 {
		seg = 0
	}
	segPath := segmentPath(path, seg)
	if torn {
		_, valid, _, err := scanSegment(segPath)
		if err != nil {
			return nil, nil, err
		}
		if err := atomicWriteFile(segPath, valid); err != nil {
			return nil, nil, fmt.Errorf("journal %s: compacting torn segment: %w", path, err)
		}
	}
	f, err := os.OpenFile(segPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if lastSeg < 0 {
		// First segment just created: persist its directory entry.
		if err := syncDir(filepath.Dir(segPath)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &Writer{
		base:  path,
		limit: limit,
		mu:    make(chan struct{}, 1),
		f:     f,
		seg:   seg,
		size:  fi.Size(),
	}
	return w, recs, nil
}

// Append durably writes one record: the line is written in a single
// write call and fsync'd before Append returns. When the current
// segment is full, Append first rotates to the next segment file.
func (w *Writer) Append(kind string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	l := line{K: kind, Sum: checksum(kind, data), V: data}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(&l); err != nil { // Encode appends the '\n'
		return err
	}

	w.mu <- struct{}{}
	defer func() { <-w.mu }()
	if w.size > 0 && w.size+int64(buf.Len()) > w.limit {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	n, err := w.f.Write(buf.Bytes())
	w.size += int64(n)
	if err != nil {
		return err
	}
	return w.f.Sync()
}

// rotate closes the current segment and starts the next one. Called
// with the writer lock held.
func (w *Writer) rotate() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	next := segmentPath(w.base, w.seg+1)
	f, err := os.OpenFile(next, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(next)); err != nil {
		f.Close()
		return err
	}
	w.f, w.seg, w.size = f, w.seg+1, 0
	return nil
}

// Close flushes and closes the active segment.
func (w *Writer) Close() error {
	w.mu <- struct{}{}
	defer func() { <-w.mu }()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Remove deletes every segment of the journal at path. Missing
// segments are not an error, so Remove is safe after partial cleanup.
func Remove(path string) error {
	for seg := 0; ; seg++ {
		err := os.Remove(segmentPath(path, seg))
		if errors.Is(err, os.ErrNotExist) {
			if seg == 0 {
				continue // base may be gone while .1 remains; keep probing
			}
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// atomicWriteFile replaces path with data crash-safely: write a temp
// file in the same directory, fsync it, rename it over path, and fsync
// the directory so the rename itself is durable.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	// Chmod before Sync: the permission bits are inode metadata, and
	// fsync only guarantees durability of what was already applied. A
	// chmod after the fsync could be lost in a crash, leaving the
	// renamed file with the 0o600 CreateTemp mode.
	if err := tmp.Chmod(0o644); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// AtomicWriteFile is the exported crash-safe replace used by study
// persistence: temp file in the same directory, fsync, rename, fsync
// the directory.
func AtomicWriteFile(path string, data []byte) error {
	return atomicWriteFile(path, data)
}

// MkdirAllSync is os.MkdirAll followed by an fsync of each directory
// that may have just been created (every component from the first
// missing one down) plus the parent of the topmost new directory.
// Plain MkdirAll leaves the new dentries only in the page cache: a
// crash right after it returns can lose the whole tree, and with it
// any journal or study file later written inside — the files would be
// durable but unreachable. Existing directories cost one extra fsync
// of the leaf and its parent.
func MkdirAllSync(path string, perm os.FileMode) error {
	if err := os.MkdirAll(path, perm); err != nil {
		return err
	}
	// Walk from the leaf up, syncing each component and its parent.
	// Stopping at the filesystem root (Dir(p) == p) bounds the walk;
	// syncing already-existing ancestors is harmless.
	for p := filepath.Clean(path); ; {
		if err := syncDir(p); err != nil {
			return err
		}
		parent := filepath.Dir(p)
		if parent == p {
			return nil
		}
		p = parent
	}
}

// syncDir fsyncs a directory so renames and file creations in it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
