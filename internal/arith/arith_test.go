package arith

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sevsim/internal/lang"
)

func TestWrap(t *testing.T) {
	if Wrap(32, 1<<33) != 0 {
		t.Error("2^33 should wrap to 0 at 32 bits")
	}
	if Wrap(32, 0x1_0000_0005) != 5 {
		t.Error("wrap low bits")
	}
	if Wrap(64, 1<<62) != 1<<62 {
		t.Error("64-bit values pass through")
	}
	if Wrap(32, -1) != -1 {
		t.Error("-1 is stable under wrap")
	}
}

func TestIsMinInt(t *testing.T) {
	if !IsMinInt(32, -1<<31) || IsMinInt(32, -1<<31+1) {
		t.Error("32-bit min detection")
	}
	if !IsMinInt(64, -1<<63) || IsMinInt(64, -1<<31) {
		t.Error("64-bit min detection")
	}
}

func TestDivisionSemantics(t *testing.T) {
	// RISC-V style: x/0 = -1, x%0 = x, minint/-1 = minint, minint%-1 = 0.
	if Bin(32, lang.OpDiv, 42, 0) != -1 {
		t.Error("div by zero")
	}
	if Bin(32, lang.OpRem, 42, 0) != 42 {
		t.Error("rem by zero")
	}
	if Bin(32, lang.OpDiv, -1<<31, -1) != -1<<31 {
		t.Error("minint div -1")
	}
	if Bin(32, lang.OpRem, -1<<31, -1) != 0 {
		t.Error("minint rem -1")
	}
	// Truncating (toward zero) division for negatives.
	if Bin(32, lang.OpDiv, -7, 2) != -3 {
		t.Error("trunc division")
	}
	if Bin(32, lang.OpRem, -7, 2) != -1 {
		t.Error("trunc remainder")
	}
}

func TestShiftCounts(t *testing.T) {
	if Bin(32, lang.OpShl, 1, 33) != 2 {
		t.Error("shift count masked to 5 bits at 32")
	}
	if Bin(64, lang.OpShl, 1, 33) != 1<<33 {
		t.Error("shift count uses 6 bits at 64")
	}
	if Bin(32, lang.OpShr, -8, 1) != -4 {
		t.Error("arithmetic right shift")
	}
}

func TestComparisonsReturnBits(t *testing.T) {
	if Bin(32, lang.OpLt, 1, 2) != 1 || Bin(32, lang.OpLt, 2, 1) != 0 {
		t.Error("lt")
	}
	if Bin(32, lang.OpEq, 5, 5) != 1 || Bin(32, lang.OpNe, 5, 5) != 0 {
		t.Error("eq/ne")
	}
	if Bin(32, lang.OpGe, 3, 3) != 1 || Bin(32, lang.OpLe, 3, 4) != 1 {
		t.Error("ge/le")
	}
}

// TestWrapClosure: every op result is already wrapped (applying Wrap is
// a no-op), for both widths.
func TestWrapClosure(t *testing.T) {
	ops := []lang.BinOp{lang.OpAdd, lang.OpSub, lang.OpMul, lang.OpDiv, lang.OpRem,
		lang.OpAnd, lang.OpOr, lang.OpXor, lang.OpShl, lang.OpShr,
		lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe, lang.OpEq, lang.OpNe}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, xlen := range []int{32, 64} {
			a := Wrap(xlen, r.Int63()-r.Int63())
			b := Wrap(xlen, r.Int63()-r.Int63())
			op := ops[r.Intn(len(ops))]
			v := Bin(xlen, op, a, b)
			if Wrap(xlen, v) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDivRemIdentity: a == (a/b)*b + a%b whenever b != 0 (and not the
// overflow case), the fundamental division identity.
func TestDivRemIdentity(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xlen := 32
		a := Wrap(xlen, r.Int63()-r.Int63())
		b := Wrap(xlen, r.Int63()-r.Int63())
		if b == 0 || (IsMinInt(xlen, a) && b == -1) {
			return true
		}
		q := Bin(xlen, lang.OpDiv, a, b)
		rem := Bin(xlen, lang.OpRem, a, b)
		return Wrap(xlen, q*b+rem) == a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestShortCircuitOpsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for && operator")
		}
	}()
	Bin(32, lang.OpLAnd, 1, 1)
}
