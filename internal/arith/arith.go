// Package arith centralizes MiniC/SEV integer semantics — wrapping
// arithmetic at the machine word width, RISC-V-style division corner
// cases, masked shift counts — so the interpreter oracle and the
// compiler's constant folder cannot drift from each other or from the
// processor model.
package arith

import "sevsim/internal/lang"

// Wrap truncates v to the xlen-bit two's-complement range.
func Wrap(xlen int, v int64) int64 {
	if xlen == 64 {
		return v
	}
	return int64(int32(v))
}

// IsMinInt reports whether v is the minimum xlen-bit integer.
func IsMinInt(xlen int, v int64) bool {
	if xlen == 64 {
		return v == -1<<63
	}
	return v == -1<<31
}

// Bin evaluates a non-short-circuit binary operation.
func Bin(xlen int, op lang.BinOp, l, r int64) int64 {
	shiftMask := int64(xlen - 1)
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case lang.OpAdd:
		return Wrap(xlen, l+r)
	case lang.OpSub:
		return Wrap(xlen, l-r)
	case lang.OpMul:
		return Wrap(xlen, l*r)
	case lang.OpDiv:
		if r == 0 {
			return Wrap(xlen, -1)
		}
		if IsMinInt(xlen, l) && r == -1 {
			return l
		}
		return Wrap(xlen, l/r)
	case lang.OpRem:
		if r == 0 {
			return l
		}
		if IsMinInt(xlen, l) && r == -1 {
			return 0
		}
		return Wrap(xlen, l%r)
	case lang.OpAnd:
		return l & r
	case lang.OpOr:
		return l | r
	case lang.OpXor:
		return l ^ r
	case lang.OpShl:
		return Wrap(xlen, l<<uint64(r&shiftMask))
	case lang.OpShr:
		return Wrap(xlen, l>>uint64(r&shiftMask)) // arithmetic
	case lang.OpLt:
		return b2i(l < r)
	case lang.OpLe:
		return b2i(l <= r)
	case lang.OpGt:
		return b2i(l > r)
	case lang.OpGe:
		return b2i(l >= r)
	case lang.OpEq:
		return b2i(l == r)
	case lang.OpNe:
		return b2i(l != r)
	}
	panic("arith: Bin called with short-circuit operator")
}
