// Package binio provides the little-endian binary framing shared by
// the machine-state serializers (cpu, mem, machine, checkpoint): an
// appending Writer and a bounds-checked Reader with a sticky error, so
// decoders read straight through and check one error at the end. The
// encoding is deliberately position-dependent and versionless — the
// artifact cache wraps every blob in a checksummed, format-versioned
// envelope, so a reader here never sees bytes from a different layout.
//
// Byte slices go through a zero-run-length encoding (RLE): machine
// slabs — cache data arrays above all — are overwhelmingly zero for
// the bundled benchmarks, and collapsing zero runs shrinks serialized
// checkpoints by orders of magnitude. The encoding is canonical
// (greedy, fixed run threshold), so identical input always produces
// identical bytes — a requirement for content-addressed storage.
package binio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Writer accumulates little-endian primitives in an append buffer.
// The zero value is ready to use.
type Writer struct {
	b []byte
}

// Bytes returns the encoded buffer. The slice aliases the writer's
// storage; further writes may reallocate but never mutate it in place
// after the caller stops writing.
func (w *Writer) Bytes() []byte { return w.b }

// Grow pre-allocates capacity for n additional bytes.
func (w *Writer) Grow(n int) {
	if cap(w.b)-len(w.b) < n {
		nb := make([]byte, len(w.b), len(w.b)+n)
		copy(nb, w.b)
		w.b = nb
	}
}

func (w *Writer) U8(v uint8)   { w.b = append(w.b, v) }
func (w *Writer) Bool(v bool)  { w.b = append(w.b, b2u(v)) }
func (w *Writer) U16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *Writer) U32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *Writer) U64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *Writer) I32(v int32)  { w.U32(uint32(v)) }

// Int encodes a Go int; values round-trip exactly through uint64.
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// Uvarint writes v in the stdlib varint encoding (lengths, counts).
func (w *Writer) Uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

// Raw appends p with no length prefix; the reader must know the size.
func (w *Writer) Raw(p []byte) { w.b = append(w.b, p...) }

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// U64s writes a length-prefixed []uint64.
func (w *Writer) U64s(v []uint64) {
	w.Uvarint(uint64(len(v)))
	w.Grow(8 * len(v))
	for _, x := range v {
		w.U64(x)
	}
}

// U16s writes a length-prefixed []uint16.
func (w *Writer) U16s(v []uint16) {
	w.Uvarint(uint64(len(v)))
	w.Grow(2 * len(v))
	for _, x := range v {
		w.U16(x)
	}
}

// rleMinRun is the shortest zero run worth collapsing: below it the
// run costs more in pair framing than it saves. Part of the canonical
// encoding — changing it changes serialized bytes.
const rleMinRun = 8

// RLE writes a length-prefixed byte slice with zero runs collapsed:
// Uvarint(total length), then (Uvarint zero-run, Uvarint literal-run,
// literal bytes) pairs covering the slice in order. Greedy and
// canonical: a zero run shorter than rleMinRun (and not at the end)
// is emitted as literals.
func (w *Writer) RLE(p []byte) {
	w.Uvarint(uint64(len(p)))
	for i := 0; i < len(p); {
		zeros := i
		for zeros < len(p) && p[zeros] == 0 {
			zeros++
		}
		nz := zeros - i
		if zeros < len(p) && nz < rleMinRun {
			nz = 0 // short interior zero run: fold into the literal
		}
		lit := i + nz
		for lit < len(p) {
			// Stop the literal at the next collapsible zero run.
			if p[lit] == 0 {
				run := lit
				for run < len(p) && p[run] == 0 {
					run++
				}
				if run-lit >= rleMinRun || run == len(p) {
					break
				}
				lit = run
				continue
			}
			lit++
		}
		w.Uvarint(uint64(nz))
		w.Uvarint(uint64(lit - (i + nz)))
		w.Raw(p[i+nz : lit])
		i = lit
	}
}

// Reader consumes a buffer written by Writer. All reads are bounds
// checked; the first failure records a sticky error and every
// subsequent read returns zero values, so decoders check Err once.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps b; the reader never mutates it but returned Raw
// slices alias it.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Fail records err as the reader's sticky error; decoders use it for
// semantic validation failures (impossible lengths, config mismatch)
// so one Err check at the end covers framing and semantics alike.
func (r *Reader) Fail(err error) { r.fail(err) }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.b) - r.off }

var errShort = errors.New("binio: truncated input")

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil || n < 0 || r.Len() < n {
		r.fail(errShort)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *Reader) Bool() bool { return r.U8() != 0 }

func (r *Reader) U16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *Reader) I32() int32 { return int32(r.U32()) }
func (r *Reader) Int() int   { return int(int64(r.U64())) }

func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(errShort)
		return 0
	}
	r.off += n
	return v
}

// length reads a Uvarint count and validates it against the bytes
// remaining (at perByte bytes per element minimum), so a corrupted
// count cannot trigger an absurd allocation.
func (r *Reader) length(perByte int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if perByte < 1 {
		perByte = 1
	}
	if n > uint64(r.Len()/perByte) {
		r.fail(fmt.Errorf("binio: length %d exceeds remaining input", n))
		return 0
	}
	return int(n)
}

// Raw returns n bytes; the result aliases the input buffer.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.take(r.length(1))) }

// U64sInto reads a length-prefixed []uint64 into dst, reusing its
// backing array when capacity suffices (pooled-buffer discipline).
func (r *Reader) U64sInto(dst []uint64) []uint64 {
	n := r.length(8)
	dst = sizeFor(dst, n)
	for i := range dst {
		dst[i] = r.U64()
	}
	return dst
}

// U16sInto reads a length-prefixed []uint16 into dst.
func (r *Reader) U16sInto(dst []uint16) []uint16 {
	n := r.length(2)
	dst = sizeFor(dst, n)
	for i := range dst {
		dst[i] = r.U16()
	}
	return dst
}

// RLEInto reads a zero-run-length-encoded byte slice into dst.
func (r *Reader) RLEInto(dst []byte) []byte {
	total := r.Uvarint()
	if r.err != nil {
		return dst[:0]
	}
	// A run pair costs at least 2 input bytes but can legitimately
	// expand to a huge zero run, so bound by the declared total (which
	// itself is bounded by sanity, not remaining bytes — zeros are the
	// whole point). Cap at 1GiB as an anti-bomb guard far above any
	// real machine slab.
	if total > 1<<30 {
		r.fail(fmt.Errorf("binio: rle length %d exceeds sanity bound", total))
		return dst[:0]
	}
	dst = sizeFor(dst, int(total))
	pos := 0
	for pos < int(total) && r.err == nil {
		zeros := r.Uvarint()
		lits := r.Uvarint()
		if r.err != nil {
			break
		}
		left := uint64(int(total) - pos)
		if zeros+lits == 0 || zeros > left || lits > left-zeros {
			r.fail(fmt.Errorf("binio: rle run overflows declared length"))
			break
		}
		for i := 0; i < int(zeros); i++ {
			dst[pos+i] = 0
		}
		pos += int(zeros)
		copy(dst[pos:pos+int(lits)], r.take(int(lits)))
		pos += int(lits)
	}
	if pos != int(total) {
		r.fail(errShort)
	}
	return dst
}

func sizeFor[T any](dst []T, n int) []T {
	if cap(dst) < n {
		return make([]T, n)
	}
	return dst[:n]
}

func b2u(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}
