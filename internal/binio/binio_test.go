package binio

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var w Writer
	w.U8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(0xFFFFFFFFFFFFFFFF)
	w.I32(-12345)
	w.Int(-7)
	w.Uvarint(1 << 40)
	w.String("hello \x00 world")
	w.U64s([]uint64{0, 1, 1 << 63})
	w.U16s([]uint16{65535, 0, 42})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Fatalf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool mismatch")
	}
	if got := r.U16(); got != 0xBEEF {
		t.Fatalf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0xFFFFFFFFFFFFFFFF {
		t.Fatalf("U64 = %#x", got)
	}
	if got := r.I32(); got != -12345 {
		t.Fatalf("I32 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.String(); got != "hello \x00 world" {
		t.Fatalf("String = %q", got)
	}
	if got := r.U64sInto(nil); !slices.Equal(got, []uint64{0, 1, 1 << 63}) {
		t.Fatalf("U64s = %v", got)
	}
	if got := r.U16sInto(nil); !slices.Equal(got, []uint16{65535, 0, 42}) {
		t.Fatalf("U16s = %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left over", r.Len())
	}
}

func TestRLERoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		{1},
		bytes.Repeat([]byte{0}, 100000),
		bytes.Repeat([]byte{7}, 1000),
		{0, 0, 0, 1, 0, 0, 0}, // short runs fold into literals
		append(bytes.Repeat([]byte{0}, 8), 1, 2, 3),         // min collapsible run
		append([]byte{9}, bytes.Repeat([]byte{0}, 1024)...), // literal then big run
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		// Sparse random buffers shaped like cache slabs.
		buf := make([]byte, rng.Intn(4096))
		for j := 0; j < len(buf)/10; j++ {
			buf[rng.Intn(len(buf)+1)%max(len(buf), 1)] = byte(rng.Intn(256))
		}
		cases = append(cases, buf)
	}
	for i, c := range cases {
		var w Writer
		w.RLE(c)
		r := NewReader(w.Bytes())
		got := r.RLEInto(nil)
		if r.Err() != nil {
			t.Fatalf("case %d: %v", i, r.Err())
		}
		if !bytes.Equal(got, c) {
			t.Fatalf("case %d: round trip mismatch (%d vs %d bytes)", i, len(got), len(c))
		}
		if r.Len() != 0 {
			t.Fatalf("case %d: %d bytes left", i, r.Len())
		}
	}
}

// TestRLECanonical: identical input must always serialize to identical
// bytes (content-addressed storage depends on it).
func TestRLECanonical(t *testing.T) {
	buf := append(bytes.Repeat([]byte{0}, 500), 1, 2, 0, 0, 3)
	var w1, w2 Writer
	w1.RLE(buf)
	w2.RLE(slices.Clone(buf))
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("RLE output not canonical")
	}
}

// TestTruncatedInputFailsCleanly: every truncation of a valid buffer
// must produce a sticky error, never a panic or silent zero data.
func TestTruncatedInputFailsCleanly(t *testing.T) {
	var w Writer
	w.U64s([]uint64{1, 2, 3})
	w.RLE(bytes.Repeat([]byte{1}, 64))
	w.String("tail")
	full := w.Bytes()
	for n := 0; n < len(full); n++ {
		r := NewReader(full[:n])
		r.U64sInto(nil)
		r.RLEInto(nil)
		r.String()
		if r.Err() == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}

// TestCorruptLengthRejected: an absurd length prefix must be rejected
// by the remaining-bytes bound, not allocated.
func TestCorruptLengthRejected(t *testing.T) {
	var w Writer
	w.Uvarint(1 << 50) // claimed element count with no data behind it
	r := NewReader(w.Bytes())
	if got := r.U64sInto(nil); len(got) != 0 || r.Err() == nil {
		t.Fatalf("corrupt length accepted: %d elems, err %v", len(got), r.Err())
	}
}

func TestReuseBuffers(t *testing.T) {
	var w Writer
	w.U64s([]uint64{1, 2})
	w.U16s([]uint16{3})
	w.RLE([]byte{4, 5, 6})
	r := NewReader(w.Bytes())
	big64 := make([]uint64, 0, 128)
	big16 := make([]uint16, 0, 128)
	big8 := make([]byte, 0, 128)
	g64 := r.U64sInto(big64)
	g16 := r.U16sInto(big16)
	g8 := r.RLEInto(big8)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if &g64[0] != &big64[:1][0] || &g16[0] != &big16[:1][0] || &g8[0] != &big8[:1][0] {
		t.Fatal("Into variants did not reuse caller buffers")
	}
	if !slices.Equal(g64, []uint64{1, 2}) || !slices.Equal(g16, []uint16{3}) || !bytes.Equal(g8, []byte{4, 5, 6}) {
		t.Fatal("values wrong after reuse")
	}
}
