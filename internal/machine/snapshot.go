package machine

import (
	"sevsim/internal/cpu"
	"sevsim/internal/mem"
)

// Snap is a full-machine checkpoint: every piece of authoritative state
// in the core, both cache levels, and backing memory, plus the cycle it
// was taken at and a precomputed convergence hash. Snaps are immutable
// once taken — Restore never writes through one and memory pages are
// copy-on-write — so a single Snap is shared read-only across all
// injection workers of a cell.
type Snap struct {
	Cycle uint64
	Core  *cpu.CoreState
	L1I   *mem.CacheState
	L1D   *mem.CacheState
	L2    *mem.CacheState
	Mem   *mem.MemoryState

	// Hash is StateHash() of the machine at snapshot time, the cheap
	// prefilter of Converged: a live machine whose hash differs cannot
	// be state-equal, so the exact comparison is skipped.
	Hash uint64
}

// Snapshot captures the complete machine state. Caches and core are
// deep-copied; memory is copy-on-write at page granularity, so the cost
// is independent of memory footprint beyond the page table itself.
func (m *Machine) Snapshot() *Snap {
	return &Snap{
		Cycle: m.Core.Cycle(),
		Core:  m.Core.Snapshot(),
		L1I:   m.L1I.Snapshot(),
		L1D:   m.L1D.Snapshot(),
		L2:    m.L2.Snapshot(),
		Mem:   m.Mem.Snapshot(),
		Hash:  m.StateHash(),
	}
}

// Release returns the snapshot's pooled component states (core and
// cache buffers) to their pools. The caller must be the snapshot's last
// holder: no Restore, Converged, or Equal may use it afterwards, and
// Release must not be called twice. Memory state is not pooled (its
// pages are copy-on-write shared) and is simply dropped.
func (s *Snap) Release() {
	s.Core.Release()
	s.L1I.Release()
	s.L1D.Release()
	s.L2.Release()
	s.Core, s.L1I, s.L1D, s.L2, s.Mem = nil, nil, nil, nil, nil
}

// Restore rewinds the machine to the snapshot, reusing the machine's
// existing backing arrays so a scratch machine can be recycled across
// thousands of injections without reallocating. The machine must have
// been built with the same Config and Program as the snapshot's source.
func (m *Machine) Restore(s *Snap) {
	m.Core.Restore(s.Core)
	m.L1I.Restore(s.L1I)
	m.L1D.Restore(s.L1D)
	m.L2.Restore(s.L2)
	m.Mem.Restore(s.Mem)
}

// StateHash folds the core's behavioral-state hash with the three cache
// LRU clocks. Every component hashed here is part of the Converged
// equality relation (never of its exclusions), so hash inequality
// soundly proves state inequality; the clocks advance on every cache
// access, making them a strong cheap discriminator for executions that
// touched the hierarchy differently.
func (m *Machine) StateHash() uint64 {
	const prime = 1099511628211
	h := m.Core.StateHash()
	h = (h ^ m.L1I.Clock()) * prime
	h = (h ^ m.L1D.Clock()) * prime
	h = (h ^ m.L2.Clock()) * prime
	return h
}

// Converged reports whether the machine's behavioral state equals the
// snapshot's: same cycle, and state equality over every component that
// can influence future execution (dead state — free registers,
// unoccupied queue slots, invalid cache lines' payloads — excluded; see
// cpu.Core.StateEquals and mem docs). Because simulation is a
// deterministic function of exactly that state, Converged true means
// the remainder of this run replays the snapshot's run bit-for-bit.
func (m *Machine) Converged(s *Snap) bool {
	if m.Core.Cycle() != s.Cycle || m.StateHash() != s.Hash {
		return false
	}
	return m.Core.StateEquals(s.Core) &&
		m.L1I.StateEquals(s.L1I) &&
		m.L1D.StateEquals(s.L1D) &&
		m.L2.StateEquals(s.L2) &&
		m.Mem.StateEquals(s.Mem)
}

// Equal is the strict bit-for-bit comparison of two snapshots (dead
// state included), used by round-trip tests.
func (s *Snap) Equal(o *Snap) bool {
	return s.Cycle == o.Cycle && s.Hash == o.Hash &&
		s.Core.Equal(o.Core) &&
		s.L1I.Equal(o.L1I) && s.L1D.Equal(o.L1D) && s.L2.Equal(o.L2) &&
		s.Mem.Equal(o.Mem)
}
