package machine

import (
	"testing"

	"sevsim/internal/isa"
)

// prog assembles instructions into a loadable program.
func prog(ins []isa.Instr) *Program {
	return &Program{Name: "test", Code: isa.Assemble(ins), Entry: CodeBase, GlobalSize: 4096}
}

// off computes a branch word offset from instruction index `from` to
// index `to` (target = PC+4+off*4).
func off(from, to int) int32 { return int32(to - from - 1) }

func runBoth(t *testing.T, ins []isa.Instr, wantOut []uint64) {
	t.Helper()
	for _, cfg := range Configs() {
		m := New(cfg, prog(ins))
		res := m.Run(2_000_000)
		if res.Outcome != OutcomeOK {
			t.Fatalf("%s: outcome %v (%s) after %d cycles", cfg.Name, res.Outcome, res.Reason, res.Cycles)
		}
		if len(res.Output) != len(wantOut) {
			t.Fatalf("%s: output %v, want %v", cfg.Name, res.Output, wantOut)
		}
		for i := range wantOut {
			if res.Output[i] != wantOut[i] {
				t.Errorf("%s: output[%d] = %d, want %d", cfg.Name, i, res.Output[i], wantOut[i])
			}
		}
	}
}

func TestArithmetic(t *testing.T) {
	const a0, a1, a2 = isa.RegA0, isa.RegA1, isa.RegA2
	runBoth(t, []isa.Instr{
		isa.I(isa.OpAddi, a0, isa.RegZero, 21),
		isa.I(isa.OpAddi, a1, isa.RegZero, 2),
		isa.R(isa.OpMul, a2, a0, a1),
		isa.Out(a2), // 42
		isa.R(isa.OpSub, a2, a0, a1),
		isa.Out(a2), // 19
		isa.R(isa.OpDiv, a2, a0, a1),
		isa.Out(a2), // 10
		isa.R(isa.OpRem, a2, a0, a1),
		isa.Out(a2), // 1
		isa.I(isa.OpSlli, a2, a1, 4),
		isa.Out(a2), // 32
		isa.R(isa.OpXor, a2, a0, a1),
		isa.Out(a2), // 23
		isa.Halt(),
	}, []uint64{42, 19, 10, 1, 32, 23})
}

func TestNegativeValuesMaskToXLEN(t *testing.T) {
	cfgs := Configs()
	ins := []isa.Instr{
		isa.I(isa.OpAddi, isa.RegA0, isa.RegZero, -1),
		isa.Out(isa.RegA0),
		isa.Halt(),
	}
	m := New(cfgs[0], prog(ins)) // 32-bit
	res := m.Run(100000)
	if res.Output[0] != 0xffffffff {
		t.Errorf("32-bit -1 = %#x", res.Output[0])
	}
	m = New(cfgs[1], prog(ins)) // 64-bit
	res = m.Run(100000)
	if res.Output[0] != 0xffffffffffffffff {
		t.Errorf("64-bit -1 = %#x", res.Output[0])
	}
}

func TestLoopSum(t *testing.T) {
	// sum = 0; for i = 1..100 sum += i; out(sum)
	const a0, a1, a2 = isa.RegA0, isa.RegA1, isa.RegA2
	ins := []isa.Instr{
		/*0*/ isa.I(isa.OpAddi, a0, isa.RegZero, 0), // sum
		/*1*/ isa.I(isa.OpAddi, a1, isa.RegZero, 1), // i
		/*2*/ isa.I(isa.OpAddi, a2, isa.RegZero, 100),
		/*3*/ isa.R(isa.OpAdd, a0, a0, a1), // loop:
		/*4*/ isa.I(isa.OpAddi, a1, a1, 1),
		/*5*/ isa.Branch(isa.OpBge, a2, a1, off(5, 3)),
		/*6*/ isa.Out(a0),
		/*7*/ isa.Halt(),
	}
	runBoth(t, ins, []uint64{5050})
}

func TestMemoryLoadsStores(t *testing.T) {
	// Store 10 values to globals, then sum them with lw/sw.
	const a0, a1, a2, a3, t0 = isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3, isa.RegT0
	ins := []isa.Instr{
		/*0*/ isa.I(isa.OpLui, a0, 0, int32(GlobalBase>>16)), // base
		/*1*/ isa.I(isa.OpAddi, a1, isa.RegZero, 0), // i
		/*2*/ isa.I(isa.OpAddi, a2, isa.RegZero, 10),
		// store loop: mem[base+i*4] = i*i
		/*3*/ isa.R(isa.OpMul, a3, a1, a1),
		/*4*/ isa.I(isa.OpSlli, t0, a1, 2),
		/*5*/ isa.R(isa.OpAdd, t0, a0, t0),
		/*6*/ isa.Store(isa.OpSw, a3, t0, 0),
		/*7*/ isa.I(isa.OpAddi, a1, a1, 1),
		/*8*/ isa.Branch(isa.OpBlt, a1, a2, off(8, 3)),
		// sum loop
		/*9*/ isa.I(isa.OpAddi, a1, isa.RegZero, 0),
		/*10*/ isa.I(isa.OpAddi, a3, isa.RegZero, 0), // sum
		/*11*/ isa.I(isa.OpSlli, t0, a1, 2),
		/*12*/ isa.R(isa.OpAdd, t0, a0, t0),
		/*13*/ isa.Load(isa.OpLw, t0, t0, 0),
		/*14*/ isa.R(isa.OpAdd, a3, a3, t0),
		/*15*/ isa.I(isa.OpAddi, a1, a1, 1),
		/*16*/ isa.Branch(isa.OpBlt, a1, a2, off(16, 11)),
		/*17*/ isa.Out(a3), // 0+1+4+...+81 = 285
		/*18*/ isa.Halt(),
	}
	runBoth(t, ins, []uint64{285})
}

func TestCallReturn(t *testing.T) {
	// main: a0 = 5; call double; out(a0); halt. double: a0 = a0*2; ret.
	const a0 = isa.RegA0
	ins := []isa.Instr{
		/*0*/ isa.I(isa.OpAddi, a0, isa.RegZero, 5),
		/*1*/ isa.Jal(isa.RegRA, off(1, 5)),
		/*2*/ isa.Out(a0),
		/*3*/ isa.Halt(),
		/*4*/ isa.Nop(),
		/*5*/ isa.R(isa.OpAdd, a0, a0, a0), // double:
		/*6*/ isa.Jalr(isa.RegZero, isa.RegRA, 0),
	}
	runBoth(t, ins, []uint64{10})
}

func TestRecursionViaStack(t *testing.T) {
	// Iterated calls exercising the return-address stack: call a leaf 50
	// times in a loop, spilling ra to the stack each iteration.
	const a0, a1, sp, ra = isa.RegA0, isa.RegA1, isa.RegSP, isa.RegRA
	ins := []isa.Instr{
		/*0*/ isa.I(isa.OpAddi, a0, isa.RegZero, 0),
		/*1*/ isa.I(isa.OpAddi, a1, isa.RegZero, 50),
		// loop:
		/*2*/ isa.I(isa.OpAddi, sp, sp, -8),
		/*3*/ isa.Store(isa.OpSw, ra, sp, 0),
		/*4*/ isa.Jal(ra, off(4, 11)), // call inc
		/*5*/ isa.Load(isa.OpLw, ra, sp, 0),
		/*6*/ isa.I(isa.OpAddi, sp, sp, 8),
		/*7*/ isa.I(isa.OpAddi, a1, a1, -1),
		/*8*/ isa.Branch(isa.OpBne, a1, isa.RegZero, off(8, 2)),
		/*9*/ isa.Out(a0), // 50
		/*10*/ isa.Halt(),
		// inc:
		/*11*/ isa.I(isa.OpAddi, a0, a0, 1),
		/*12*/ isa.Jalr(isa.RegZero, ra, 0),
	}
	runBoth(t, ins, []uint64{50})
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A store immediately followed by a load of the same address: the
	// load must see the stored value (via forwarding or stall).
	const a0, a1 = isa.RegA0, isa.RegA1
	ins := []isa.Instr{
		isa.I(isa.OpLui, a0, 0, int32(GlobalBase>>16)),
		isa.I(isa.OpAddi, a1, isa.RegZero, 1234),
		isa.Store(isa.OpSw, a1, a0, 64),
		isa.Load(isa.OpLw, a1, a0, 64),
		isa.Out(a1),
		isa.Halt(),
	}
	runBoth(t, ins, []uint64{1234})
}

func TestByteAccess(t *testing.T) {
	const a0, a1 = isa.RegA0, isa.RegA1
	ins := []isa.Instr{
		isa.I(isa.OpLui, a0, 0, int32(GlobalBase>>16)),
		isa.I(isa.OpAddi, a1, isa.RegZero, -1), // 0xff..ff
		isa.Store(isa.OpSb, a1, a0, 3),
		isa.Load(isa.OpLbu, a1, a0, 3),
		isa.Out(a1), // 255
		isa.Load(isa.OpLb, a1, a0, 3),
		isa.Out(a1), // sign-extended -1
		isa.Halt(),
	}
	for _, cfg := range Configs() {
		m := New(cfg, prog(ins))
		res := m.Run(100000)
		if res.Outcome != OutcomeOK {
			t.Fatalf("%s: %v %s", cfg.Name, res.Outcome, res.Reason)
		}
		mask := uint64(0xffffffff)
		if cfg.CPU.XLEN == 64 {
			mask = ^uint64(0)
		}
		if res.Output[0] != 255 || res.Output[1] != mask {
			t.Errorf("%s: output %x", cfg.Name, res.Output)
		}
	}
}

func TestUnmappedLoadCrashes(t *testing.T) {
	ins := []isa.Instr{
		isa.I(isa.OpLui, isa.RegA0, 0, 0x0900), // 0x09000000: unmapped
		isa.Load(isa.OpLw, isa.RegA1, isa.RegA0, 0),
		isa.Out(isa.RegA1),
		isa.Halt(),
	}
	for _, cfg := range Configs() {
		res := New(cfg, prog(ins)).Run(100000)
		if res.Outcome != OutcomeCrash {
			t.Errorf("%s: outcome %v, want crash", cfg.Name, res.Outcome)
		}
	}
}

func TestUnmappedStoreCrashes(t *testing.T) {
	ins := []isa.Instr{
		isa.I(isa.OpLui, isa.RegA0, 0, 0x0900),
		isa.Store(isa.OpSw, isa.RegZero, isa.RegA0, 0),
		isa.Halt(),
	}
	for _, cfg := range Configs() {
		res := New(cfg, prog(ins)).Run(100000)
		if res.Outcome != OutcomeCrash {
			t.Errorf("%s: outcome %v, want crash", cfg.Name, res.Outcome)
		}
	}
}

func TestIllegalInstructionCrashes(t *testing.T) {
	p := &Program{Name: "ill", Code: []uint32{0xffffffff}, Entry: CodeBase, GlobalSize: 64}
	for _, cfg := range Configs() {
		res := New(cfg, p).Run(100000)
		if res.Outcome != OutcomeCrash {
			t.Errorf("%s: outcome %v, want crash", cfg.Name, res.Outcome)
		}
	}
}

func TestStoreToCodeCrashes(t *testing.T) {
	ins := []isa.Instr{
		isa.I(isa.OpLui, isa.RegA0, 0, 0),
		isa.I(isa.OpAddi, isa.RegA0, isa.RegA0, CodeBase),
		isa.Store(isa.OpSw, isa.RegZero, isa.RegA0, 0),
		isa.Halt(),
	}
	for _, cfg := range Configs() {
		res := New(cfg, prog(ins)).Run(100000)
		if res.Outcome != OutcomeCrash {
			t.Errorf("%s: outcome %v, want crash", cfg.Name, res.Outcome)
		}
	}
}

func TestInfiniteLoopTimesOut(t *testing.T) {
	ins := []isa.Instr{
		isa.Jal(isa.RegZero, -1), // jump to self
	}
	for _, cfg := range Configs() {
		res := New(cfg, prog(ins)).Run(5000)
		if res.Outcome != OutcomeTimeout {
			t.Errorf("%s: outcome %v, want timeout", cfg.Name, res.Outcome)
		}
	}
}

func TestMispredictRecovery(t *testing.T) {
	// A data-dependent alternating branch defeats the bimodal predictor;
	// results must still be architecturally correct.
	const a0, a1, a2, a3 = isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3
	ins := []isa.Instr{
		/*0*/ isa.I(isa.OpAddi, a0, isa.RegZero, 0), // sum
		/*1*/ isa.I(isa.OpAddi, a1, isa.RegZero, 0), // i
		/*2*/ isa.I(isa.OpAddi, a2, isa.RegZero, 64), // n
		// loop: if (i & 1) sum += 3 else sum += 5
		/*3*/ isa.I(isa.OpAndi, a3, a1, 1),
		/*4*/ isa.Branch(isa.OpBeq, a3, isa.RegZero, off(4, 7)),
		/*5*/ isa.I(isa.OpAddi, a0, a0, 3),
		/*6*/ isa.Jal(isa.RegZero, off(6, 8)),
		/*7*/ isa.I(isa.OpAddi, a0, a0, 5),
		/*8*/ isa.I(isa.OpAddi, a1, a1, 1), // join
		/*9*/ isa.Branch(isa.OpBlt, a1, a2, off(9, 3)),
		/*10*/ isa.Out(a0), // 32*3 + 32*5 = 256
		/*11*/ isa.Halt(),
	}
	runBoth(t, ins, []uint64{256})
}

func TestStatsPopulated(t *testing.T) {
	const a0 = isa.RegA0
	ins := []isa.Instr{
		isa.I(isa.OpAddi, a0, isa.RegZero, 7),
		isa.Out(a0),
		isa.Halt(),
	}
	res := New(CortexA15Like(), prog(ins)).Run(100000)
	if res.Stats.Committed != 3 {
		t.Errorf("committed = %d, want 3", res.Stats.Committed)
	}
	if res.Stats.Cycles == 0 || res.Cycles == 0 {
		t.Error("cycles not recorded")
	}
	if res.L1I.Misses == 0 {
		t.Error("expected at least one L1I miss")
	}
}

func TestIPCReasonable(t *testing.T) {
	// A long dependency-free loop body should sustain IPC well above the
	// in-order-single-issue baseline of <=1.
	const a0, a1, a2, a3, t0, t1 = isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3, isa.RegT0, isa.RegT1
	ins := []isa.Instr{
		/*0*/ isa.I(isa.OpAddi, a0, isa.RegZero, 0),
		/*1*/ isa.I(isa.OpAddi, a1, isa.RegZero, 1000),
		// loop: independent adds
		/*2*/ isa.I(isa.OpAddi, a2, a2, 1),
		/*3*/ isa.I(isa.OpAddi, a3, a3, 1),
		/*4*/ isa.I(isa.OpAddi, t0, t0, 1),
		/*5*/ isa.I(isa.OpAddi, t1, t1, 1),
		/*6*/ isa.I(isa.OpAddi, a0, a0, 1),
		/*7*/ isa.Branch(isa.OpBlt, a0, a1, off(7, 2)),
		/*8*/ isa.Halt(),
	}
	res := New(CortexA72Like(), prog(ins)).Run(1_000_000)
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome %v %s", res.Outcome, res.Reason)
	}
	if ipc := res.Stats.IPC(); ipc < 1.2 {
		t.Errorf("IPC = %.2f, expected superscalar execution > 1.2", ipc)
	}
}
