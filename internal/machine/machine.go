package machine

import (
	"encoding/binary"

	"sevsim/internal/cpu"
	"sevsim/internal/isa"
	"sevsim/internal/mem"
	"sevsim/internal/simerr"
)

// Memory layout shared by every program.
const (
	CodeBase   = 0x0000_1000
	GlobalBase = 0x0010_0000
	StackTop   = 0x00f0_0000
	StackSize  = 0x0004_0000 // 256 KiB
)

// Program is a linked executable image.
type Program struct {
	Name       string
	Code       []uint32
	Entry      uint64
	GlobalSize uint64 // zero-initialized global segment at GlobalBase
}

// Outcome classifies how a simulation ended. The values mirror the
// paper's fault-effect classes; Masked vs SDC is decided later by the
// injector via output comparison (a completed run reports OutcomeOK).
type Outcome int

const (
	OutcomeOK      Outcome = iota // program committed HALT
	OutcomeCrash                  // precise exception / memory fault
	OutcomeTimeout                // exceeded the cycle budget
	OutcomeAssert                 // simulator invariant violated
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeCrash:
		return "crash"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeAssert:
		return "assert"
	}
	return "?"
}

// Result is the outcome of one simulation.
type Result struct {
	Outcome Outcome
	Reason  string // crash or assert detail
	Cycles  uint64
	Output  []uint64
	Stats   cpu.Stats
	L1I     mem.CacheStats
	L1D     mem.CacheStats
	L2      mem.CacheStats
	// Unexpected is set when the assert came from a recovered non-simerr
	// panic: it indicates a simulator bug rather than a modelled assert
	// and is tracked separately by the campaign driver.
	Unexpected bool
}

// Machine is one assembled system instance. Machines are single-use:
// build one per simulation.
type Machine struct {
	Cfg  Config //snapshot:skip immutable configuration; a Snap restores only into an identically configured machine
	Mem  *mem.Memory
	L1I  *mem.Cache
	L1D  *mem.Cache
	L2   *mem.Cache
	Core *cpu.Core
}

// New builds a machine and loads the program.
func New(cfg Config, prog *Program) *Machine {
	m := mem.NewMemory(cfg.MemLatency)
	codeSize := uint64(len(prog.Code)) * 4
	m.Map(mem.Region{Name: "code", Base: CodeBase, Size: pageAlign(codeSize), Perm: mem.PermR | mem.PermX})
	globalSize := prog.GlobalSize
	if globalSize == 0 {
		globalSize = mem.PageSize
	}
	m.Map(mem.Region{Name: "globals", Base: GlobalBase, Size: pageAlign(globalSize), Perm: mem.PermR | mem.PermW})
	m.Map(mem.Region{Name: "stack", Base: StackTop - StackSize, Size: StackSize, Perm: mem.PermR | mem.PermW})

	image := make([]byte, codeSize)
	for i, w := range prog.Code {
		binary.LittleEndian.PutUint32(image[i*4:], w)
	}
	m.LoadImage(CodeBase, image)

	l2 := mem.NewCache(cfg.L2, m)
	l1i := mem.NewCache(cfg.L1I, l2)
	l1d := mem.NewCache(cfg.L1D, l2)
	core := cpu.NewCore(cfg.CPU, m, l1i, l1d, prog.Entry)
	core.SetReg(isa.RegSP, StackTop)
	return &Machine{Cfg: cfg, Mem: m, L1I: l1i, L1D: l1d, L2: l2, Core: core}
}

func pageAlign(n uint64) uint64 {
	return (n + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
}

// Hook is a scheduled callback into a running machine, used by the fault
// injector to flip a bit at a chosen cycle.
type Hook struct {
	At uint64
	Fn func(*Machine)
}

// Watch is a scheduled state probe: at the start of cycle At (after any
// Hook scheduled for the same cycle, so a probe at the injection cycle
// observes post-flip state) Fn inspects the machine; returning true
// stops the run immediately. The fault injector uses watches to detect
// early convergence back to golden state.
type Watch struct {
	At uint64
	Fn func(*Machine) bool
}

// Run simulates until HALT, a crash, an assert, or the cycle budget is
// exhausted. Hooks fire at the start of their scheduled cycle.
func (m *Machine) Run(maxCycles uint64, hooks ...Hook) Result {
	res, _ := m.RunWatched(maxCycles, nil, hooks...)
	return res
}

// RunWatched is Run plus a sorted list of state watches. When a watch
// fires (its Fn returns true) the run stops at that cycle and stopped
// is true; the caller decides what the truncated run means. Watches
// scheduled before the machine's current cycle (possible after a
// checkpoint restore) are skipped, and a watch never observes the
// machine mid-cycle: both hooks and watches run only at cycle
// boundaries, hooks first.
func (m *Machine) RunWatched(maxCycles uint64, watches []Watch, hooks ...Hook) (res Result, stopped bool) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(*simerr.Assert); ok {
				res = m.result(OutcomeAssert, a.Reason)
				return
			}
			// A non-simerr panic is a simulator bug surfaced by an
			// injected fault reaching an unvalidated path. Classify it
			// as an assert (that is what gem5 would do) but mark it.
			res = m.result(OutcomeAssert, "unexpected panic")
			res.Unexpected = true
		}
	}()
	next, nextW := 0, 0
	for m.Core.Cycle() < maxCycles {
		cyc := m.Core.Cycle()
		for next < len(hooks) && hooks[next].At <= cyc {
			hooks[next].Fn(m)
			next++
		}
		for nextW < len(watches) && watches[nextW].At <= cyc {
			if watches[nextW].At == cyc && watches[nextW].Fn(m) {
				return m.result(OutcomeOK, "state converged"), true
			}
			nextW++
		}
		if !m.Core.Step() {
			break
		}
	}
	if m.Core.Halted() {
		return m.result(OutcomeOK, ""), false
	}
	if c := m.Core.Crash(); c != nil {
		return m.result(OutcomeCrash, c.Reason), false
	}
	return m.result(OutcomeTimeout, "cycle budget exhausted"), false
}

func (m *Machine) result(o Outcome, reason string) Result {
	return Result{
		Outcome: o,
		Reason:  reason,
		Cycles:  m.Core.Cycle(),
		Output:  m.Core.Output(),
		Stats:   m.Core.Stats,
		L1I:     m.L1I.Stats,
		L1D:     m.L1D.Stats,
		L2:      m.L2.Stats,
	}
}
