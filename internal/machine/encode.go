package machine

// Binary serialization of full-machine checkpoints (Snap) for the
// prep-artifact cache: a warm cache hit reconstructs a checkpoint
// stream from bytes instead of re-simulating the golden run. Decoding
// draws core and cache states from their pools, exactly like a live
// Snapshot, so cached and recorded checkpoints obey the same
// ownership and Release rules.

import (
	"fmt"

	"sevsim/internal/binio"
	"sevsim/internal/cpu"
	"sevsim/internal/mem"
)

// EncodeTo appends the snapshot's complete state to w.
func (s *Snap) EncodeTo(w *binio.Writer) {
	w.U64(s.Cycle)
	w.U64(s.Hash)
	s.Core.EncodeTo(w)
	s.L1I.EncodeTo(w)
	s.L1D.EncodeTo(w)
	s.L2.EncodeTo(w)
	s.Mem.EncodeTo(w)
}

// EncodeTo appends the run result to w; a cached golden result lets a
// warm prep skip the golden simulation.
func (res *Result) EncodeTo(w *binio.Writer) {
	w.U8(uint8(res.Outcome))
	w.String(res.Reason)
	w.U64(res.Cycles)
	w.U64s(res.Output)
	res.Stats.EncodeTo(w)
	for _, cs := range []mem.CacheStats{res.L1I, res.L1D, res.L2} {
		w.U64(cs.Hits)
		w.U64(cs.Misses)
		w.U64(cs.Writebacks)
		w.U64(cs.Evictions)
	}
	w.Bool(res.Unexpected)
}

// DecodeResult reads a result written by Result.EncodeTo.
func DecodeResult(r *binio.Reader) (Result, error) {
	var res Result
	o := r.U8()
	if o > uint8(OutcomeAssert) {
		r.Fail(fmt.Errorf("machine: decode result: outcome %d out of range", o))
		return Result{}, r.Err()
	}
	res.Outcome = Outcome(o)
	res.Reason = r.String()
	res.Cycles = r.U64()
	res.Output = r.U64sInto(nil)
	res.Stats.DecodeFrom(r)
	for _, cs := range []*mem.CacheStats{&res.L1I, &res.L1D, &res.L2} {
		cs.Hits = r.U64()
		cs.Misses = r.U64()
		cs.Writebacks = r.U64()
		cs.Evictions = r.U64()
	}
	res.Unexpected = r.Bool()
	if err := r.Err(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// DecodeSnap reads one Snap written by EncodeTo, validating every
// component against cfg — the machine configuration the snapshot was
// captured under. The caller owns the result and must Release it.
func DecodeSnap(r *binio.Reader, cfg Config) (*Snap, error) {
	s := &Snap{}
	s.Cycle = r.U64()
	s.Hash = r.U64()
	var err error
	if s.Core, err = cpu.DecodeCoreState(r, &cfg.CPU); err != nil {
		return nil, fmt.Errorf("machine: decode snap core: %w", err)
	}
	release := func(e error) (*Snap, error) {
		s.Release()
		return nil, e
	}
	if s.L1I, err = mem.DecodeCacheState(r, cfg.L1I); err != nil {
		s.Core.Release()
		return nil, fmt.Errorf("machine: decode snap L1I: %w", err)
	}
	if s.L1D, err = mem.DecodeCacheState(r, cfg.L1D); err != nil {
		s.Core.Release()
		s.L1I.Release()
		return nil, fmt.Errorf("machine: decode snap L1D: %w", err)
	}
	if s.L2, err = mem.DecodeCacheState(r, cfg.L2); err != nil {
		s.Core.Release()
		s.L1I.Release()
		s.L1D.Release()
		return nil, fmt.Errorf("machine: decode snap L2: %w", err)
	}
	if s.Mem, err = mem.DecodeMemoryState(r); err != nil {
		return release(fmt.Errorf("machine: decode snap memory: %w", err))
	}
	return s, nil
}
