package machine

import (
	"testing"

	"sevsim/internal/binio"
	"sevsim/internal/isa"
)

// TestSnapEncodeRoundTripWithCrash serializes a snapshot taken from a
// crashed machine — the one core state a mid-run golden checkpoint
// never exhibits — and asserts strict equality after decode, crash
// detail included.
func TestSnapEncodeRoundTripWithCrash(t *testing.T) {
	ins := []isa.Instr{
		isa.I(isa.OpLui, isa.RegA0, 0, 0x0900), // 0x09000000: unmapped
		isa.Load(isa.OpLw, isa.RegA1, isa.RegA0, 0),
		isa.Halt(),
	}
	for _, cfg := range Configs() {
		m := New(cfg, prog(ins))
		if res := m.Run(100000); res.Outcome != OutcomeCrash {
			t.Fatalf("%s: outcome %v, want crash", cfg.Name, res.Outcome)
		}
		sn := m.Snapshot()
		var w binio.Writer
		sn.EncodeTo(&w)
		got, err := DecodeSnap(binio.NewReader(w.Bytes()), cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if !got.Equal(sn) {
			t.Fatalf("%s: crashed snapshot not equal after round trip", cfg.Name)
		}
		if got.Core.Crash == nil || *got.Core.Crash != *sn.Core.Crash {
			t.Fatalf("%s: crash detail lost: %v vs %v", cfg.Name, got.Core.Crash, sn.Core.Crash)
		}
		got.Release()
		sn.Release()
	}
}
