// Package machine assembles a full simulated system: an out-of-order
// core, the L1I/L1D/L2 cache hierarchy, physical memory, and a program
// loader. It provides the two microarchitecture configurations of the
// paper's Table I and the run loop used by golden runs and fault
// injection campaigns.
package machine

import (
	"sevsim/internal/cpu"
	"sevsim/internal/mem"
)

// Config describes one complete machine.
type Config struct {
	Name string
	CPU  cpu.Config
	L1I  mem.CacheConfig
	L1D  mem.CacheConfig
	L2   mem.CacheConfig
	// MemLatency is the flat DRAM access latency in cycles.
	MemLatency int
	// RawFITPerBit is the technology fault rate used for FIT analysis
	// (failures per 10^9 hours per bit), from the paper's reference [37].
	RawFITPerBit float64
	// ClockHz converts cycles to wall time for the FPE metric.
	ClockHz float64
}

// addrBits is the physical address width used for cache tag sizing.
const addrBits = 32

// CortexA15Like returns the 32-bit Armv7-class configuration of Table I.
func CortexA15Like() Config {
	return Config{
		Name: "Cortex-A15-like",
		CPU: cpu.Config{
			Name:            "A15",
			XLEN:            32,
			NumArchRegs:     16,
			NumPhysRegs:     128,
			ROBSize:         40,
			IQSize:          32,
			LQSize:          16,
			SQSize:          16,
			FetchWidth:      3,
			IssueWidth:      6,
			CommitWidth:     3,
			WBWidth:         8,
			FetchQueueSize:  12,
			ALULat:          1,
			MulLat:          4,
			DivLat:          19,
			BimodalSize:     512,
			BTBSize:         64,
			RASSize:         8,
			StoreForwarding: true,
		},
		L1I:          mem.CacheConfig{Name: "L1I", Size: 32 << 10, Ways: 2, LineSize: 64, HitLatency: 1, AddrBits: addrBits, ReadOnly: true},
		L1D:          mem.CacheConfig{Name: "L1D", Size: 32 << 10, Ways: 2, LineSize: 64, HitLatency: 2, AddrBits: addrBits},
		L2:           mem.CacheConfig{Name: "L2", Size: 1 << 20, Ways: 8, LineSize: 64, HitLatency: 12, AddrBits: addrBits},
		MemLatency:   100,
		RawFITPerBit: 2.59e-5,
		ClockHz:      1.6e9,
	}
}

// CortexA72Like returns the 64-bit Armv8-class configuration of Table I.
func CortexA72Like() Config {
	return Config{
		Name: "Cortex-A72-like",
		CPU: cpu.Config{
			Name:            "A72",
			XLEN:            64,
			NumArchRegs:     32,
			NumPhysRegs:     192,
			ROBSize:         128,
			IQSize:          64,
			LQSize:          16,
			SQSize:          16,
			FetchWidth:      3,
			IssueWidth:      6,
			CommitWidth:     3,
			WBWidth:         8,
			FetchQueueSize:  12,
			ALULat:          1,
			MulLat:          3,
			DivLat:          12,
			BimodalSize:     2048,
			BTBSize:         256,
			RASSize:         16,
			StoreForwarding: true,
		},
		L1I:          mem.CacheConfig{Name: "L1I", Size: 48 << 10, Ways: 3, LineSize: 64, HitLatency: 1, AddrBits: addrBits, ReadOnly: true},
		L1D:          mem.CacheConfig{Name: "L1D", Size: 32 << 10, Ways: 2, LineSize: 64, HitLatency: 2, AddrBits: addrBits},
		L2:           mem.CacheConfig{Name: "L2", Size: 2 << 20, Ways: 16, LineSize: 64, HitLatency: 9, AddrBits: addrBits},
		MemLatency:   70,
		RawFITPerBit: 9.39e-6,
		ClockHz:      2.0e9,
	}
}

// Configs returns both microarchitectures in presentation order.
func Configs() []Config { return []Config{CortexA15Like(), CortexA72Like()} }
