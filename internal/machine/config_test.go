package machine

import "testing"

// TestTableIParameters pins the two configurations to the paper's
// Table I values; a drive-by edit of a structure size would silently
// change every AVF and FIT number.
func TestTableIParameters(t *testing.T) {
	a15 := CortexA15Like()
	a72 := CortexA72Like()

	check := func(name string, got, want int) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	check("A15 XLEN", a15.CPU.XLEN, 32)
	check("A15 L1D size", a15.L1D.Size, 32<<10)
	check("A15 L1D ways", a15.L1D.Ways, 2)
	check("A15 L1I size", a15.L1I.Size, 32<<10)
	check("A15 L1I ways", a15.L1I.Ways, 2)
	check("A15 L2 size", a15.L2.Size, 1<<20)
	check("A15 L2 ways", a15.L2.Ways, 8)
	check("A15 PRF", a15.CPU.NumPhysRegs, 128)
	check("A15 IQ", a15.CPU.IQSize, 32)
	check("A15 LQ", a15.CPU.LQSize, 16)
	check("A15 SQ", a15.CPU.SQSize, 16)
	check("A15 ROB", a15.CPU.ROBSize, 40)
	check("A15 fetch width", a15.CPU.FetchWidth, 3)
	check("A15 issue width", a15.CPU.IssueWidth, 6)
	check("A15 writeback width", a15.CPU.WBWidth, 8)

	check("A72 XLEN", a72.CPU.XLEN, 64)
	check("A72 L1D size", a72.L1D.Size, 32<<10)
	check("A72 L1I size", a72.L1I.Size, 48<<10)
	check("A72 L1I ways", a72.L1I.Ways, 3)
	check("A72 L2 size", a72.L2.Size, 2<<20)
	check("A72 L2 ways", a72.L2.Ways, 16)
	check("A72 PRF", a72.CPU.NumPhysRegs, 192)
	check("A72 IQ", a72.CPU.IQSize, 64)
	check("A72 ROB", a72.CPU.ROBSize, 128)

	// Raw FIT rates from the paper's reference [37].
	if a15.RawFITPerBit != 2.59e-5 {
		t.Errorf("A15 raw FIT = %g", a15.RawFITPerBit)
	}
	if a72.RawFITPerBit != 9.39e-6 {
		t.Errorf("A72 raw FIT = %g", a72.RawFITPerBit)
	}
	if !a15.L1I.ReadOnly || !a72.L1I.ReadOnly {
		t.Error("instruction caches must be read-only")
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomeOK: "ok", OutcomeCrash: "crash", OutcomeTimeout: "timeout", OutcomeAssert: "assert",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("Outcome(%d) = %q, want %q", o, o.String(), s)
		}
	}
}

func TestHooksFireInOrder(t *testing.T) {
	p := &Program{Name: "loop", Code: []uint32{spinWord}, Entry: CodeBase, GlobalSize: 64}
	var fired []uint64
	m := New(CortexA15Like(), p)
	m.Run(2000,
		Hook{At: 10, Fn: func(*Machine) { fired = append(fired, 10) }},
		Hook{At: 50, Fn: func(*Machine) { fired = append(fired, 50) }},
	)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 50 {
		t.Errorf("hooks fired %v", fired)
	}
}

func TestHookAfterEndNeverFires(t *testing.T) {
	p := &Program{Name: "halt", Code: []uint32{haltWord}, Entry: CodeBase, GlobalSize: 64}
	// Code is just "halt": the run ends in a handful of cycles.
	fired := false
	m := New(CortexA15Like(), p)
	m.Run(1<<20, Hook{At: 1 << 19, Fn: func(*Machine) { fired = true }})
	if fired {
		t.Error("hook beyond program end fired")
	}
}

// spinWord is "jal zr, -1" (branch to self); haltWord is "halt".
const (
	spinWord = uint32(0x941fffff)
	haltWord = uint32(0xa0000000)
)

func TestPageAlign(t *testing.T) {
	cases := map[uint64]uint64{0: 0, 1: 4096, 4096: 4096, 4097: 8192}
	for in, want := range cases {
		if got := pageAlign(in); got != want {
			t.Errorf("pageAlign(%d) = %d, want %d", in, got, want)
		}
	}
}
