package machine

import (
	"testing"

	"sevsim/internal/cpu"
	"sevsim/internal/isa"
)

// snapIns is the snapshot-test workload: store and load loops plus a
// multiply and data-dependent branches, so the caches, backing memory,
// predictor, and out-of-order structures all carry live state at any
// mid-run snapshot point.
func snapIns() []isa.Instr {
	const a0, a1, a2, a3, t0 = isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3, isa.RegT0
	return []isa.Instr{
		/*0*/ isa.I(isa.OpLui, a0, 0, int32(GlobalBase>>16)), // base
		/*1*/ isa.I(isa.OpAddi, a1, isa.RegZero, 0), // i
		/*2*/ isa.I(isa.OpAddi, a2, isa.RegZero, 10),
		// store loop: mem[base+i*4] = i*i
		/*3*/ isa.R(isa.OpMul, a3, a1, a1),
		/*4*/ isa.I(isa.OpSlli, t0, a1, 2),
		/*5*/ isa.R(isa.OpAdd, t0, a0, t0),
		/*6*/ isa.Store(isa.OpSw, a3, t0, 0),
		/*7*/ isa.I(isa.OpAddi, a1, a1, 1),
		/*8*/ isa.Branch(isa.OpBlt, a1, a2, off(8, 3)),
		// sum loop
		/*9*/ isa.I(isa.OpAddi, a1, isa.RegZero, 0),
		/*10*/ isa.I(isa.OpAddi, a3, isa.RegZero, 0), // sum
		/*11*/ isa.I(isa.OpSlli, t0, a1, 2),
		/*12*/ isa.R(isa.OpAdd, t0, a0, t0),
		/*13*/ isa.Load(isa.OpLw, t0, t0, 0),
		/*14*/ isa.R(isa.OpAdd, a3, a3, t0),
		/*15*/ isa.I(isa.OpAddi, a1, a1, 1),
		/*16*/ isa.Branch(isa.OpBlt, a1, a2, off(16, 11)),
		/*17*/ isa.Out(a3), // 285
		/*18*/ isa.Halt(),
	}
}

// runTo advances a fresh machine to the start of cycle c using a watch
// that fires unconditionally there.
func runTo(t *testing.T, m *Machine, c uint64) {
	t.Helper()
	_, stopped := m.RunWatched(c+1, []Watch{{At: c, Fn: func(*Machine) bool { return true }}})
	if !stopped {
		t.Fatalf("machine ended before cycle %d", c)
	}
	if got := m.Core.Cycle(); got != c {
		t.Fatalf("runTo stopped at cycle %d, want %d", got, c)
	}
}

// goldenRun returns the fault-free reference result for the snapshot
// workload under cfg.
func goldenRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res := New(cfg, prog(snapIns())).Run(2_000_000)
	if res.Outcome != OutcomeOK {
		t.Fatalf("%s: golden run %v %s", cfg.Name, res.Outcome, res.Reason)
	}
	return res
}

// snapCycles picks representative snapshot points across a run: the
// very first cycle, interior points, and the last cycle before halt.
func snapCycles(golden uint64) []uint64 {
	return []uint64{0, golden / 4, golden / 2, 3 * golden / 4, golden - 1}
}

func sameResult(a, b Result) bool {
	if a.Outcome != b.Outcome || a.Cycles != b.Cycles || len(a.Output) != len(b.Output) {
		return false
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			return false
		}
	}
	return true
}

// TestSnapshotRestoreRoundTrip is the core property of the checkpoint
// layer: restoring a snapshot into the machine it was taken from — even
// after that machine has run arbitrarily far past it — reproduces the
// snapshot bit for bit, including the convergence hash, and the
// continuation replays the golden run exactly.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, cfg := range Configs() {
		golden := goldenRun(t, cfg)
		for _, c := range snapCycles(golden.Cycles) {
			m := New(cfg, prog(snapIns()))
			runTo(t, m, c)
			s1 := m.Snapshot()
			if m.StateHash() != s1.Hash {
				t.Fatalf("%s@%d: snapshot hash disagrees with live StateHash", cfg.Name, c)
			}
			if !m.Converged(s1) {
				t.Fatalf("%s@%d: machine not Converged with its own snapshot", cfg.Name, c)
			}

			// Dirty every structure by running to completion, then rewind.
			m.Run(2_000_000)
			m.Restore(s1)
			if m.StateHash() != s1.Hash {
				t.Errorf("%s@%d: restored StateHash differs from snapshot hash", cfg.Name, c)
			}
			s2 := m.Snapshot()
			if !s1.Equal(s2) {
				t.Errorf("%s@%d: re-snapshot after restore not strictly equal", cfg.Name, c)
			}

			// The restored machine must finish exactly like the golden run.
			res := m.Run(2_000_000)
			if !sameResult(res, golden) {
				t.Errorf("%s@%d: continuation %v after %d cycles %v, golden %v after %d cycles %v",
					cfg.Name, c, res.Outcome, res.Cycles, res.Output,
					golden.Outcome, golden.Cycles, golden.Output)
			}
		}
	}
}

// TestRestoreIntoFreshMachine checks the fast-forward use case: a
// snapshot taken on one machine restores into a newly built machine
// (same config and program) and that machine continues identically.
func TestRestoreIntoFreshMachine(t *testing.T) {
	for _, cfg := range Configs() {
		golden := goldenRun(t, cfg)
		for _, c := range snapCycles(golden.Cycles) {
			src := New(cfg, prog(snapIns()))
			runTo(t, src, c)
			s := src.Snapshot()

			fresh := New(cfg, prog(snapIns()))
			fresh.Restore(s)
			if !fresh.Snapshot().Equal(s) {
				t.Errorf("%s@%d: fresh machine's re-snapshot not equal to source snapshot", cfg.Name, c)
			}
			res := fresh.Run(2_000_000)
			if !sameResult(res, golden) {
				t.Errorf("%s@%d: fresh-machine continuation diverged: %v after %d cycles",
					cfg.Name, c, res.Outcome, res.Cycles)
			}

			// The snapshot survives its consumer: the pages it shares with
			// the continued run are copy-on-write, so a second restore must
			// still replay golden.
			again := New(cfg, prog(snapIns()))
			again.Restore(s)
			if res := again.Run(2_000_000); !sameResult(res, golden) {
				t.Errorf("%s@%d: second restore from the same snapshot diverged", cfg.Name, c)
			}
		}
	}
}

// TestConvergedDetectsDivergence: Converged must reject a different
// cycle and any behavioral state difference, e.g. a mutated live
// register value.
func TestConvergedDetectsDivergence(t *testing.T) {
	cfg := Configs()[0]
	golden := goldenRun(t, cfg)
	c := golden.Cycles / 2

	m := New(cfg, prog(snapIns()))
	runTo(t, m, c)
	s := m.Snapshot()

	// Same machine one step later: different cycle.
	m.Core.Step()
	if m.Converged(s) {
		t.Error("Converged true across different cycles")
	}

	// Same cycle, one architectural register changed.
	m2 := New(cfg, prog(snapIns()))
	m2.Restore(s)
	m2.Core.SetReg(isa.RegA3, 0xdeadbeef)
	if m2.Converged(s) {
		t.Error("Converged true despite a mutated register value")
	}
}

// FuzzSnapshotRoundTrip fuzzes the snapshot cycle: at an arbitrary
// point of the run, Snapshot → dirty → Restore must round-trip the full
// machine state bit for bit on both microarchitectures.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(17))
	f.Add(uint64(1 << 40))
	f.Fuzz(func(t *testing.T, seed uint64) {
		for _, cfg := range Configs() {
			golden := goldenRun(t, cfg)
			c := seed % golden.Cycles
			m := New(cfg, prog(snapIns()))
			runTo(t, m, c)
			s1 := m.Snapshot()
			m.Run(2_000_000)
			m.Restore(s1)
			if !m.Snapshot().Equal(s1) {
				t.Errorf("%s@%d: snapshot round trip not bit-exact", cfg.Name, c)
			}
			if res := m.Run(2_000_000); !sameResult(res, golden) {
				t.Errorf("%s@%d: restored continuation diverged from golden", cfg.Name, c)
			}
		}
	})
}

// FuzzStateHashEquals fuzzes the hash/equality contract the convergence
// fast-exit rests on, over mid-run core states perturbed by random bit
// flips. StateHash mixes a strict subset of the StateEquals fields, so
// the two agree one way only: StateEquals true must force equal hashes
// (hash inequality soundly proves state inequality — the Converged
// prefilter), while equal hashes prove nothing. The fuzzer pins that
// implication, the pre/post-restore hash round trip, and
// CoreState.Equal reflexivity and symmetry.
func FuzzStateHashEquals(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(0))
	f.Add(uint64(3), uint64(12345), uint8(1))
	f.Add(uint64(40), uint64(0xfeedface), uint8(7))
	f.Add(uint64(1<<40), uint64(1), uint8(255))
	f.Fuzz(func(t *testing.T, at, flipSeed uint64, nflips uint8) {
		for _, cfg := range Configs() {
			golden := goldenRun(t, cfg)
			m := New(cfg, prog(snapIns()))
			runTo(t, m, at%golden.Cycles)
			s1 := m.Core.Snapshot()
			h1 := m.Core.StateHash()
			if !m.Core.StateEquals(s1) {
				t.Fatal("core not state-equal to its own snapshot")
			}
			if !s1.Equal(s1) {
				t.Fatal("CoreState.Equal not reflexive")
			}

			// Perturb the core in place: up to 7 flips at LCG-derived
			// positions across the injectable fields. Flips may land on
			// dead state (free registers, unoccupied slots) or live state
			// — both sides of the StateEquals exclusions get exercised.
			x := flipSeed
			for i := 0; i < int(nflips%8); i++ {
				x = x*6364136223846793005 + 1442695040888963407
				fld := cpu.Field((x >> 33) % uint64(cpu.NumFields))
				x = x*6364136223846793005 + 1442695040888963407
				m.Core.FlipBit(fld, (x>>17)%m.Core.FieldBits(fld))
			}
			s2 := m.Core.Snapshot()
			h2 := m.Core.StateHash()

			// Soundness: behavioral equality implies hash agreement.
			if m.Core.StateEquals(s1) && h2 != h1 {
				t.Fatal("StateEquals true but StateHash differs: the hash mixes state outside the equality relation")
			}
			// Strict equality is stronger still, and must be symmetric.
			if s1.Equal(s2) != s2.Equal(s1) {
				t.Fatal("CoreState.Equal not symmetric")
			}
			if !s2.Equal(s2) {
				t.Fatal("CoreState.Equal not reflexive on a perturbed state")
			}
			if s1.Equal(s2) && h1 != h2 {
				t.Fatal("strictly equal snapshots hash differently")
			}

			// Restore is bit-exact: the hash taken at snapshot time and
			// the hash after restoring that snapshot must match, for the
			// clean state and the perturbed one alike.
			m.Core.Restore(s1)
			if got := m.Core.StateHash(); got != h1 {
				t.Fatalf("hash after Restore %#x, want %#x", got, h1)
			}
			if !m.Core.StateEquals(s1) {
				t.Fatal("core not state-equal to the snapshot it was just restored from")
			}
			s3 := m.Core.Snapshot()
			if !s3.Equal(s1) {
				t.Fatal("restore round trip not bit-exact")
			}
			s3.Release()
			m.Core.Restore(s2)
			if got := m.Core.StateHash(); got != h2 {
				t.Fatalf("hash after restoring perturbed state %#x, want %#x", got, h2)
			}
			s1.Release()
			s2.Release()
		}
	})
}
