// Package sevsim's root benchmark harness regenerates every table and
// figure of the paper. Each BenchmarkFigXX / BenchmarkTableX function
// (a) prints the corresponding figure's rows from a shared scaled-down
// study, and (b) times a representative unit of the underlying work
// (one golden run, one fault injection, one aggregation) so ns/op is
// meaningful.
//
// Environment knobs:
//
//	SEV_FAULTS  faults per campaign cell (default 8 so the full harness fits a single-core laptop run; paper scale 2000)
//	SEV_SEED    master sampling seed (default 2021)
//
// The full-scale campaign is cmd/sevrepro.
package sevsim_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"sevsim/internal/artcache"
	"sevsim/internal/binanalysis"
	"sevsim/internal/campaign"
	"sevsim/internal/compiler"
	"sevsim/internal/core"
	"sevsim/internal/faultinj"
	"sevsim/internal/lang"
	"sevsim/internal/machine"
	"sevsim/internal/report"
	"sevsim/internal/workloads"
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

var (
	studyOnce sync.Once
	studyVal  *core.Study
	studyErr  error
)

// theStudy runs (once) the scaled-down full study behind every figure.
func theStudy(b *testing.B) *core.Study {
	b.Helper()
	studyOnce.Do(func() {
		spec := core.DefaultSpec(envInt("SEV_FAULTS", 8))
		spec.Seed = int64(envInt("SEV_SEED", 2021))
		fmt.Printf("[study] running: 2 microarchitectures x 8 benchmarks x 4 levels x 15 fields x %d faults\n",
			spec.Faults)
		studyVal, studyErr = spec.Run()
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return studyVal
}

var printedFigures sync.Map

// printFigure renders a figure once per process.
func printFigure(key string, render func()) {
	if _, loaded := printedFigures.LoadOrStore(key, true); !loaded {
		render()
	}
}

// injectionExperiment builds a reusable experiment for per-iteration
// injection timing.
var (
	expOnce sync.Once
	expVal  *faultinj.Experiment
)

func injectionUnit(b *testing.B) *faultinj.Experiment {
	b.Helper()
	expOnce.Do(func() {
		bench, _ := workloads.ByName("qsort")
		cfg := machine.CortexA15Like()
		prog, err := compiler.Compile(bench.Source(bench.TestSize), "qsort", compiler.O2,
			compiler.Target{XLEN: 32, NumArchRegs: 16})
		if err != nil {
			panic(err)
		}
		expVal, err = faultinj.NewExperiment(cfg, prog)
		if err != nil {
			panic(err)
		}
	})
	return expVal
}

// benchInjections times single end-to-end injections into a target
// after printing the figure.
func benchInjections(b *testing.B, target string) {
	exp := injectionUnit(b)
	t, ok := faultinj.TargetByName(target)
	if !ok {
		b.Fatalf("unknown target %s", target)
	}
	inj, err := exp.Sample(t, 256, 99)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Inject(t, inj[i%len(inj)])
	}
}

func BenchmarkTable1_Configs(b *testing.B) {
	printFigure("table1", func() { report.TableI(os.Stdout) })
	// Unit: constructing one full machine (core + hierarchy).
	bench, _ := workloads.ByName("qsort")
	prog, err := compiler.Compile(bench.Source(bench.TestSize), "qsort", compiler.O1,
		compiler.Target{XLEN: 64, NumArchRegs: 32})
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.CortexA72Like()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine.New(cfg, prog)
	}
}

func BenchmarkFig01_RelativePerformance(b *testing.B) {
	st := theStudy(b)
	printFigure("fig1", func() { report.Fig1Performance(os.Stdout, st) })
	// Unit: one golden run of qsort at O2 on the A72-like machine.
	bench, _ := workloads.ByName("qsort")
	prog, err := compiler.Compile(bench.Source(bench.TestSize), "qsort", compiler.O2,
		compiler.Target{XLEN: 64, NumArchRegs: 32})
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.CortexA72Like()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res := machine.New(cfg, prog).Run(1 << 30)
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

func BenchmarkFig02_L1I_AVF(b *testing.B) {
	st := theStudy(b)
	printFigure("fig2", func() {
		report.FigAVF(os.Stdout, st, "Figure 2: AVF of the L1 instruction cache (data field)", "L1I.data")
		report.FigAVF(os.Stdout, st, "Figure 2 (cont.): AVF of the L1 instruction cache (tag field)", "L1I.tag")
	})
	benchInjections(b, "L1I.data")
}

func BenchmarkFig03_L1D_AVF(b *testing.B) {
	st := theStudy(b)
	printFigure("fig3", func() {
		report.FigAVF(os.Stdout, st, "Figure 3: AVF of the L1 data cache (data field)", "L1D.data")
		report.FigAVF(os.Stdout, st, "Figure 3 (cont.): AVF of the L1 data cache (tag field)", "L1D.tag")
	})
	benchInjections(b, "L1D.data")
}

func BenchmarkFig04_L2_AVF(b *testing.B) {
	st := theStudy(b)
	printFigure("fig4", func() {
		report.FigAVF(os.Stdout, st, "Figure 4: AVF of the L2 cache (data field)", "L2.data")
		report.FigAVF(os.Stdout, st, "Figure 4 (cont.): AVF of the L2 cache (tag field)", "L2.tag")
	})
	benchInjections(b, "L2.data")
}

func BenchmarkFig05_RF_AVF(b *testing.B) {
	st := theStudy(b)
	printFigure("fig5", func() {
		report.FigAVF(os.Stdout, st, "Figure 5: AVF of the physical register file", "RF")
	})
	benchInjections(b, "RF")
}

func BenchmarkFig06_LQSQ_AVF(b *testing.B) {
	st := theStudy(b)
	printFigure("fig6", func() {
		report.FigAVF(os.Stdout, st, "Figure 6: AVF of the load queue", "LQ")
		report.FigAVF(os.Stdout, st, "Figure 6 (cont.): AVF of the store queue", "SQ")
	})
	benchInjections(b, "LQ")
}

func BenchmarkFig07_IQ_AVF(b *testing.B) {
	st := theStudy(b)
	printFigure("fig7", func() {
		report.FigAVF(os.Stdout, st, "Figure 7: AVF of the issue queue (source field)", "IQ.src")
		report.FigAVF(os.Stdout, st, "Figure 7 (cont.): AVF of the issue queue (destination field)", "IQ.dst")
	})
	benchInjections(b, "IQ.src")
}

func BenchmarkFig08_ROB_AVF(b *testing.B) {
	st := theStudy(b)
	printFigure("fig8", func() {
		report.FigAVF(os.Stdout, st, "Figure 8: AVF of the reorder buffer (PC field)", "ROB.pc")
		report.FigAVF(os.Stdout, st, "Figure 8 (cont.): AVF of the reorder buffer (dest field)", "ROB.dest")
		report.FigAVF(os.Stdout, st, "Figure 8 (cont.): AVF of the reorder buffer (old-mapping field)", "ROB.old")
		report.FigAVF(os.Stdout, st, "Figure 8 (cont.): AVF of the reorder buffer (control field)", "ROB.ctrl")
	})
	benchInjections(b, "ROB.pc")
}

func BenchmarkFig09_WAVF_Delta(b *testing.B) {
	st := theStudy(b)
	printFigure("fig9", func() { report.Fig9Delta(os.Stdout, st) })
	// Unit: the weighted-AVF aggregation across benchmarks.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, target := range st.TargetNames {
			_ = st.AcrossBenches(st.MachineNames[0], "O2", target)
		}
	}
}

func BenchmarkFig10_FIT(b *testing.B) {
	st := theStudy(b)
	printFigure("fig10", func() { report.Fig10FIT(os.Stdout, st) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.CellStructures(st.MachineNames[0], st.BenchNames[0], "O2")
	}
}

func BenchmarkFig11_FPE(b *testing.B) {
	st := theStudy(b)
	printFigure("fig11", func() { report.Fig11FPE(os.Stdout, st) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = st.Golden(st.MachineNames[0], st.BenchNames[0], "O2")
	}
}

func BenchmarkFig12_ECC_FIT(b *testing.B) {
	st := theStudy(b)
	printFigure("fig12", func() { report.Fig12ECC(os.Stdout, st) })
	benchInjections(b, "SQ")
}

// BenchmarkStudyScheduler is the end-to-end benchmark for the
// study-level parallel execution engine: it runs the same scaled-down
// study serially (Parallelism: 1) and on the shared worker pool
// (Parallelism: GOMAXPROCS), verifies the saved results are
// byte-identical, and reports the wall-clock speedup. On multicore
// hardware the pooled run is expected to be >= 2x faster.
func BenchmarkStudyScheduler(b *testing.B) {
	schedSpec := func(par int) core.Spec {
		qsort, _ := workloads.ByName("qsort")
		gsm, _ := workloads.ByName("gsm")
		rf, _ := faultinj.TargetByName("RF")
		robPC, _ := faultinj.TargetByName("ROB.pc")
		l1d, _ := faultinj.TargetByName("L1D.data")
		return core.Spec{
			Machines:    []machine.Config{machine.CortexA15Like(), machine.CortexA72Like()},
			Benchmarks:  []workloads.Benchmark{qsort, gsm},
			Levels:      []compiler.OptLevel{compiler.O0, compiler.O2},
			Targets:     []faultinj.Target{rf, robPC, l1d},
			Faults:      envInt("SEV_FAULTS", 8) * 4,
			Seed:        2021,
			Size:        func(bm workloads.Benchmark) int { return bm.TestSize },
			Parallelism: par,
		}
	}
	printFigure("study-scheduler", func() {
		t0 := time.Now()
		serial, err := schedSpec(1).Run()
		if err != nil {
			b.Fatal(err)
		}
		serialD := time.Since(t0)
		t0 = time.Now()
		pooled, err := schedSpec(runtime.GOMAXPROCS(0)).Run()
		if err != nil {
			b.Fatal(err)
		}
		pooledD := time.Since(t0)
		sj, _ := json.Marshal(serial)
		pj, _ := json.Marshal(pooled)
		if !bytes.Equal(sj, pj) {
			b.Fatal("parallel study results differ from serial run")
		}
		fmt.Printf("\nStudy scheduler: %d cells, parallelism 1: %v, parallelism %d: %v (%.2fx, byte-identical results)\n",
			len(serial.Results), serialD.Round(time.Millisecond),
			runtime.GOMAXPROCS(0), pooledD.Round(time.Millisecond),
			float64(serialD)/float64(pooledD))
	})
	// Unit: one pooled campaign cell on a shared worker pool.
	exp := injectionUnit(b)
	rf, _ := faultinj.TargetByName("RF")
	pool := campaign.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		campaign.Run(exp, rf, campaign.Options{Faults: 8, Seed: int64(i), Pool: pool})
	}
}

// BenchmarkInjectionCell quantifies the checkpoint fast path on a
// representative campaign cell (qsort, O2, A15-like). The printed
// figure runs the cell's campaigns with the fast path fully off
// (fresh machine per injection, simulated from cycle 0) and fully on
// (checkpoint fast-forward + early-convergence exit), asserts the
// classification counts are identical, and reports the wall-clock
// speedup. The timed unit runs single injections under both
// configurations as sub-benchmarks, so `-benchmem` exposes the
// per-injection allocation reduction from the pooled scratch machines.
func BenchmarkInjectionCell(b *testing.B) {
	bench, _ := workloads.ByName("qsort")
	prog, err := compiler.Compile(bench.Source(bench.TestSize), "qsort", compiler.O2,
		compiler.Target{XLEN: 32, NumArchRegs: 16})
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.CortexA15Like()
	newExp := func(opts faultinj.Options) *faultinj.Experiment {
		exp, err := faultinj.NewExperimentOptions(cfg, prog, opts)
		if err != nil {
			b.Fatal(err)
		}
		return exp
	}
	refOpts := faultinj.Options{Checkpoints: -1, NoFastExit: true}

	printFigure("injection-cell", func() {
		faults := envInt("SEV_FAULTS", 8) * 32
		var targets []faultinj.Target
		for _, name := range []string{"RF", "L1D.data", "ROB.pc"} {
			t, _ := faultinj.TargetByName(name)
			targets = append(targets, t)
		}
		pool := campaign.NewPool(runtime.GOMAXPROCS(0))
		defer pool.Close()
		// Each measurement includes experiment preparation, so the
		// recording pass the fast path adds is charged against it.
		measure := func(opts faultinj.Options) (time.Duration, []campaign.Counts) {
			t0 := time.Now()
			exp := newExp(opts)
			var counts []campaign.Counts
			for _, t := range targets {
				r := campaign.Run(exp, t, campaign.Options{Faults: faults, Seed: 2021, Pool: pool})
				counts = append(counts, r.Counts)
			}
			return time.Since(t0), counts
		}
		refD, refC := measure(refOpts)
		fastD, fastC := measure(faultinj.Options{})
		for i := range refC {
			if refC[i] != fastC[i] {
				b.Fatalf("fast path classified %s differently: %+v vs %+v",
					targets[i].Name(), fastC[i], refC[i])
			}
		}
		fmt.Printf("\nInjection cell (qsort, O2, A15-like; %d targets x %d faults): reference %v, checkpointed %v (%.2fx, identical classification)\n",
			len(targets), faults, refD.Round(time.Millisecond), fastD.Round(time.Millisecond),
			float64(refD)/float64(fastD))
	})

	// Unit: one end-to-end RF injection, reference vs fast path.
	rf, _ := faultinj.TargetByName("RF")
	ref := newExp(refOpts)
	fast := newExp(faultinj.Options{})
	inj, err := ref.Sample(rf, 256, 99)
	if err != nil {
		b.Fatal(err)
	}
	for _, sub := range []struct {
		name string
		exp  *faultinj.Experiment
	}{{"reference", ref}, {"fastpath", fast}} {
		b.Run(sub.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sub.exp.Inject(rf, inj[i%len(inj)])
			}
		})
	}
}

// BenchmarkPrunedStudy quantifies the static injection pruner: it runs
// the same RF study with Spec.Prune off and on, asserts the
// classification is identical, and reports the wall-clock saving plus
// the fraction of injections proven Masked without simulation.
func BenchmarkPrunedStudy(b *testing.B) {
	pruneSpec := func(prune bool) core.Spec {
		qsort, _ := workloads.ByName("qsort")
		gsm, _ := workloads.ByName("gsm")
		rf, _ := faultinj.TargetByName("RF")
		return core.Spec{
			Machines:    []machine.Config{machine.CortexA15Like()},
			Benchmarks:  []workloads.Benchmark{qsort, gsm},
			Levels:      compiler.Levels,
			Targets:     []faultinj.Target{rf},
			Faults:      envInt("SEV_FAULTS", 8) * 16,
			Seed:        2021,
			Size:        func(bm workloads.Benchmark) int { return bm.TestSize },
			Parallelism: runtime.GOMAXPROCS(0),
			Prune:       prune,
		}
	}
	printFigure("pruned-study", func() {
		t0 := time.Now()
		base, err := pruneSpec(false).Run()
		if err != nil {
			b.Fatal(err)
		}
		baseD := time.Since(t0)
		t0 = time.Now()
		pruned, err := pruneSpec(true).Run()
		if err != nil {
			b.Fatal(err)
		}
		prunedD := time.Since(t0)
		total, skipped := 0, 0
		for i := range base.Results {
			bc, pc := base.Results[i].Counts, pruned.Results[i].Counts
			skipped += pc.Pruned
			total += pruned.Faults
			pc.Pruned = 0 // the only field allowed to differ
			if bc != pc {
				b.Fatalf("pruned study classified cell %d differently: %+v vs %+v",
					i, base.Results[i].Counts, pruned.Results[i].Counts)
			}
		}
		fmt.Printf("\nPruned study: %d cells x %d faults: unpruned %v, pruned %v (%.2fx); %d/%d injections (%.1f%%) proven Masked statically\n",
			len(base.Results), pruned.Faults,
			baseD.Round(time.Millisecond), prunedD.Round(time.Millisecond),
			float64(baseD)/float64(prunedD),
			skipped, total, 100*float64(skipped)/float64(total))
	})
	// Unit: one pruned RF campaign cell (traced golden run amortized).
	bench, _ := workloads.ByName("qsort")
	prog, err := compiler.Compile(bench.Source(bench.TestSize), "qsort", compiler.O2,
		compiler.Target{XLEN: 32, NumArchRegs: 16})
	if err != nil {
		b.Fatal(err)
	}
	exp, err := faultinj.NewTracedExperiment(machine.CortexA15Like(), prog)
	if err != nil {
		b.Fatal(err)
	}
	a, err := binanalysis.AnalyzeWords(prog.Code)
	if err != nil {
		b.Fatal(err)
	}
	pruner, err := binanalysis.NewRFPruner(a, exp)
	if err != nil {
		b.Fatal(err)
	}
	rf, _ := faultinj.TargetByName("RF")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		campaign.Run(exp, rf, campaign.Options{Faults: 8, Seed: int64(i), Pruner: pruner})
	}
}

// BenchmarkCachedStudy quantifies the prep-artifact cache
// (internal/artcache): the printed figure runs the same small study
// uncached, cold-cached (empty cache directory), and warm-cached
// (second run on the same directory), asserts all three produce
// byte-identical study JSON, and reports the warm-over-cold wall-clock
// speedup. The timed unit prepares one experiment (compile + golden
// run + checkpoint recording vs one cache load) as the direct/warm
// sub-benchmarks that BENCH_cache.json records and CI gates.
func BenchmarkCachedStudy(b *testing.B) {
	cachedSpec := func(c *artcache.Cache) core.Spec {
		qsort, _ := workloads.ByName("qsort")
		gsm, _ := workloads.ByName("gsm")
		rf, _ := faultinj.TargetByName("RF")
		robPC, _ := faultinj.TargetByName("ROB.pc")
		l1d, _ := faultinj.TargetByName("L1D.data")
		return core.Spec{
			Machines:    []machine.Config{machine.CortexA15Like(), machine.CortexA72Like()},
			Benchmarks:  []workloads.Benchmark{qsort, gsm},
			Levels:      []compiler.OptLevel{compiler.O0, compiler.O2},
			Targets:     []faultinj.Target{rf, robPC, l1d},
			Faults:      envInt("SEV_FAULTS", 8),
			Seed:        2021,
			Size:        func(bm workloads.Benchmark) int { return bm.TestSize },
			Parallelism: runtime.GOMAXPROCS(0),
			Cache:       c,
		}
	}
	runStudy := func(c *artcache.Cache) ([]byte, time.Duration) {
		t0 := time.Now()
		st, err := cachedSpec(c).Run()
		if err != nil {
			b.Fatal(err)
		}
		d := time.Since(t0)
		j, err := json.Marshal(st)
		if err != nil {
			b.Fatal(err)
		}
		return j, d
	}
	printFigure("cached-study", func() {
		base, baseD := runStudy(nil)
		cache, err := artcache.Open(b.TempDir(), artcache.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cold, coldD := runStudy(cache)
		warm, warmD := runStudy(cache)
		if !bytes.Equal(base, cold) || !bytes.Equal(base, warm) {
			b.Fatal("cached study results differ from the uncached run")
		}
		s := cache.Stats()
		fmt.Printf("\nCached study: uncached %v, cold %v, warm %v (%.2fx warm over cold; %d hits, %d misses, byte-identical results)\n",
			baseD.Round(time.Millisecond), coldD.Round(time.Millisecond), warmD.Round(time.Millisecond),
			float64(coldD)/float64(warmD), s.Hits, s.Misses)
	})

	// Unit: one experiment preparation, direct vs warm cache hit. gsm's
	// golden run is tens of thousands of cycles — prep cost here is
	// dominated by simulation, as in real studies, not by the compile.
	bench, _ := workloads.ByName("gsm")
	prog, err := compiler.Compile(bench.Source(bench.TestSize), "gsm", compiler.O2,
		compiler.Target{XLEN: 32, NumArchRegs: 16})
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.CortexA15Like()
	cache, err := artcache.Open(b.TempDir(), artcache.Options{})
	if err != nil {
		b.Fatal(err)
	}
	prime, err := core.CachedExperiment(cache, cfg, prog, faultinj.Options{})
	if err != nil {
		b.Fatal(err)
	}
	prime.Close()
	for _, sub := range []struct {
		name  string
		cache *artcache.Cache
	}{{"direct", nil}, {"warm", cache}} {
		b.Run(sub.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exp, err := core.CachedExperiment(sub.cache, cfg, prog, faultinj.Options{})
				if err != nil {
					b.Fatal(err)
				}
				exp.Close()
			}
		})
	}
}

// BenchmarkCompile times the compiler itself (all four levels).
func BenchmarkCompile(b *testing.B) {
	bench, _ := workloads.ByName("rijndael")
	src := bench.Source(bench.TestSize)
	tgt := compiler.Target{XLEN: 64, NumArchRegs: 32}
	for _, level := range compiler.Levels {
		b.Run(level.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := compiler.Compile(src, "rijndael", level, tgt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_StoreForwarding quantifies the DESIGN.md ablation:
// LQ vulnerability with and without store-to-load forwarding.
func BenchmarkAblation_StoreForwarding(b *testing.B) {
	printFigure("ablation-fwd", func() {
		bench, _ := workloads.ByName("qsort")
		prog, err := compiler.Compile(bench.Source(bench.TestSize), "qsort", compiler.O2,
			compiler.Target{XLEN: 32, NumArchRegs: 16})
		if err != nil {
			panic(err)
		}
		faults := envInt("SEV_FAULTS", 8) * 4
		fmt.Println("\nAblation: store-to-load forwarding (qsort, O2, A15-like, LQ field)")
		for _, fwd := range []bool{true, false} {
			cfg := machine.CortexA15Like()
			cfg.CPU.StoreForwarding = fwd
			exp, err := faultinj.NewExperiment(cfg, prog)
			if err != nil {
				panic(err)
			}
			lq, _ := faultinj.TargetByName("LQ")
			r := campaign.Run(exp, lq, campaign.Options{Faults: faults, Seed: 3})
			fmt.Printf("  forwarding=%-5v golden=%7d cycles  LQ AVF=%.2f%%\n",
				fwd, exp.GoldenCycles, r.AVF()*100)
		}
	})
	benchInjections(b, "LQ")
}

// BenchmarkAblation_Scheduling quantifies the instruction-scheduling
// design choice: cycles at O2 with the list scheduler forced on/off.
func BenchmarkAblation_Scheduling(b *testing.B) {
	printFigure("ablation-sched", func() {
		bench, _ := workloads.ByName("fft")
		src := bench.Source(bench.TestSize)
		tgt := compiler.Target{XLEN: 64, NumArchRegs: 32}
		prog := cli2Compile(b, src, tgt, false)
		progSched := cli2Compile(b, src, tgt, true)
		cfg := machine.CortexA72Like()
		r1 := machine.New(cfg, prog).Run(1 << 30)
		r2 := machine.New(cfg, progSched).Run(1 << 30)
		fmt.Println("\nAblation: list instruction scheduling (fft, O2, A72-like)")
		fmt.Printf("  without scheduler: %d cycles\n  with scheduler:    %d cycles\n",
			r1.Cycles, r2.Cycles)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

// cli2Compile compiles at O2 with explicit scheduler control.
func cli2Compile(b *testing.B, src string, tgt compiler.Target, sched bool) *machine.Program {
	b.Helper()
	prog := mustParseB(b, src)
	mod, err := compiler.Lower(prog, tgt.WordSize())
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range mod.Funcs {
		compiler.RunO1(f, tgt.XLEN)
		compiler.RunO2(f, tgt.XLEN, 14)
		if sched {
			compiler.Schedule(f)
		}
	}
	p, err := compiler.Generate(mod, tgt, false)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func mustParseB(b *testing.B, src string) *lang.Program {
	b.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkExtension_MultiBitUpsets extends the study with the
// multi-bit fault models: AVF of the ROB control field under single,
// double-adjacent, and quad-adjacent upsets (the direction of the
// authors' companion MBU work).
func BenchmarkExtension_MultiBitUpsets(b *testing.B) {
	printFigure("ext-mbu", func() {
		exp := injectionUnit(b)
		ctrl, _ := faultinj.TargetByName("ROB.ctrl")
		faults := envInt("SEV_FAULTS", 8) * 4
		fmt.Println("\nExtension: multi-bit upsets (qsort, O2, A15-like, ROB.ctrl)")
		for _, model := range faultinj.Models() {
			r := campaign.Run(exp, ctrl, campaign.Options{Faults: faults, Seed: 13, Model: model})
			fmt.Printf("  %-16s AVF %.2f%% (SDC %.1f%%, crash %.1f%%, timeout %.1f%%, assert %.1f%%)\n",
				model, r.AVF()*100,
				r.ClassRate(faultinj.SDC)*100, r.ClassRate(faultinj.Crash)*100,
				r.ClassRate(faultinj.Timeout)*100, r.ClassRate(faultinj.Assert)*100)
		}
	})
	exp := injectionUnit(b)
	ctrl, _ := faultinj.TargetByName("ROB.ctrl")
	inj, err := exp.Sample(ctrl, 128, 31)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.InjectModel(ctrl, inj[i%len(inj)], faultinj.DoubleAdjacent)
	}
}

// BenchmarkExtension_PerPassAblation runs the paper's stated future
// work: the performance impact of disabling individual O3 optimizations.
func BenchmarkExtension_PerPassAblation(b *testing.B) {
	printFigure("ext-ablate", func() {
		bench, _ := workloads.ByName("gsm")
		src := bench.Source(bench.TestSize)
		tgt := compiler.Target{XLEN: 64, NumArchRegs: 32}
		cfg := machine.CortexA72Like()
		base := compiler.LevelPasses(compiler.O3, tgt)
		fmt.Println("\nExtension: per-pass ablation (gsm, O3 baseline, A72-like)")
		full := uint64(0)
		labels := append([]string{""}, compiler.PassNames()...)
		for _, name := range labels {
			ps := base
			label := "full O3"
			if name != "" {
				ps = base.Without(name)
				if ps == base {
					continue
				}
				label = "  - " + name
			}
			prog, err := compiler.CompileWithPasses(src, "gsm", ps, tgt)
			if err != nil {
				panic(err)
			}
			res := machine.New(cfg, prog).Run(1 << 32)
			if full == 0 {
				full = res.Cycles
			}
			fmt.Printf("  %-14s %8d cycles (%.3fx), %d instructions\n",
				label, res.Cycles, float64(res.Cycles)/float64(full), len(prog.Code))
		}
	})
	// Unit: one full O3 compile.
	bench, _ := workloads.ByName("gsm")
	src := bench.Source(bench.TestSize)
	tgt := compiler.Target{XLEN: 64, NumArchRegs: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(src, "gsm", compiler.O3, tgt); err != nil {
			b.Fatal(err)
		}
	}
}
