// Customworkload shows how to characterize your own program: write it
// in MiniC, pick a microarchitecture, and measure the per-structure
// vulnerability of its execution — the workflow a reliability engineer
// would use to decide where protection matters for a specific kernel.
package main

import (
	"fmt"
	"log"
	"sort"

	"sevsim/internal/campaign"
	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
	"sevsim/internal/stats"
)

// A small fixed-point IIR filter: the kind of control-loop kernel that
// ends up in safety-critical firmware.
const src = `
global int hist[4];

func step(int x) int {
	// y[n] = (3*y[n-1] + 2*y[n-2] + x) / 8, fixed point.
	var int y = (3 * hist[0] + 2 * hist[1] + x) / 8;
	hist[3] = hist[2];
	hist[2] = hist[1];
	hist[1] = hist[0];
	hist[0] = y;
	return y;
}

func main() {
	var int seed = 1;
	var int cs = 0;
	var int i;
	for (i = 0; i < 3000; i = i + 1) {
		seed = (seed * 1103515245 + 12345) & 2147483647;
		var int y = step(seed % 1024);
		cs = (cs + y) & 2147483647;
	}
	out(cs);
	out(hist[0]);
}`

func main() {
	const faults = 150
	cfg := machine.CortexA15Like()
	tgt := compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs}
	prog, err := compiler.Compile(src, "iir", compiler.O2, tgt)
	if err != nil {
		log.Fatal(err)
	}
	exp, err := faultinj.NewExperiment(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iir filter on %s: %d cycles golden, %d instructions\n",
		cfg.Name, exp.GoldenCycles, len(prog.Code))

	type row struct {
		name string
		res  campaign.Result
	}
	var rows []row
	for _, target := range faultinj.Targets() {
		r := campaign.Run(exp, target, campaign.Options{Faults: faults, Seed: 42})
		rows = append(rows, row{target.Name(), r})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].res.AVF() > rows[j].res.AVF() })

	margin := stats.ErrorMargin(faults, 1<<40, 0.99)
	fmt.Printf("\nstructures ranked by vulnerability (±%.1f%% at 99%% confidence):\n", margin*100)
	for _, r := range rows {
		fmt.Printf("  %-10s AVF %6.2f%%  (SDC %.1f%%, crash %.1f%%, timeout %.1f%%, assert %.1f%%)\n",
			r.name, r.res.AVF()*100,
			r.res.ClassRate(faultinj.SDC)*100,
			r.res.ClassRate(faultinj.Crash)*100,
			r.res.ClassRate(faultinj.Timeout)*100,
			r.res.ClassRate(faultinj.Assert)*100)
	}
	fmt.Println("\nprotect the top of this list first.")
}
