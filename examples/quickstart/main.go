// Quickstart: compile a MiniC program, run it on a simulated
// out-of-order core, and inject a handful of transient faults into the
// physical register file — the whole sevsim pipeline in one page.
package main

import (
	"fmt"
	"log"

	"sevsim/internal/campaign"
	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
)

const src = `
global int table[256];

func main() {
	var int i;
	for (i = 0; i < 256; i = i + 1) {
		table[i] = (i * 37 + 11) % 211;
	}
	var int sum = 0;
	for (i = 0; i < 256; i = i + 1) {
		sum = (sum + table[i] * i) & 2147483647;
	}
	out(sum);
}`

func main() {
	// 1. Compile at -O2 for the Cortex-A72-like 64-bit configuration.
	cfg := machine.CortexA72Like()
	tgt := compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs}
	prog, err := compiler.Compile(src, "quickstart", compiler.O2, tgt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d instructions\n", len(prog.Code))

	// 2. Run it fault-free (the "golden" reference).
	exp, err := faultinj.NewExperiment(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %d cycles, output %v\n", exp.GoldenCycles, exp.GoldenOutput)

	// 3. Inject 200 single-bit faults into the physical register file.
	rf, _ := faultinj.TargetByName("RF")
	res := campaign.Run(exp, rf, campaign.Options{Faults: 200, Seed: 1})
	fmt.Printf("\nregister file: %d bits, 200 faults injected\n", res.StructBits)
	fmt.Printf("  masked  %3d\n  SDC     %3d\n  crash   %3d\n  timeout %3d\n  assert  %3d\n",
		res.Counts.Masked, res.Counts.SDC, res.Counts.Crash,
		res.Counts.Timeout, res.Counts.Assert)
	fmt.Printf("AVF = %.2f%%\n", res.AVF()*100)
}
