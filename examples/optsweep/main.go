// Optsweep reproduces the shape of the paper's Figure 1 for a chosen
// benchmark: it compiles the benchmark at O0..O3 for both
// microarchitectures and reports cycles, IPC, code size, and the
// hardware-structure utilization shifts that drive the AVF differences
// (more live physical registers, fewer dynamic instructions, denser
// issue) as optimization increases.
package main

import (
	"fmt"
	"log"
	"os"

	"sevsim/internal/compiler"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

func main() {
	name := "dijkstra"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bench, err := workloads.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	src := bench.Source(bench.DefaultSize)
	fmt.Printf("benchmark %s (size %d): %s\n", bench.Name, bench.DefaultSize, bench.Traits)

	for _, cfg := range machine.Configs() {
		tgt := compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs}
		fmt.Printf("\n[%s]\n", cfg.Name)
		fmt.Printf("%-5s %10s %8s %7s %8s %9s %9s %9s\n",
			"level", "cycles", "speedup", "IPC", "code", "PRF live", "ROB occ", "IQ occ")
		var baseline uint64
		for _, level := range compiler.Levels {
			prog, err := compiler.Compile(src, bench.Name, level, tgt)
			if err != nil {
				log.Fatal(err)
			}
			res := machine.New(cfg, prog).Run(1 << 34)
			if res.Outcome != machine.OutcomeOK {
				log.Fatalf("%s %v: %v %s", bench.Name, level, res.Outcome, res.Reason)
			}
			if level == compiler.O0 {
				baseline = res.Cycles
			}
			c := float64(res.Stats.Cycles)
			fmt.Printf("%-5s %10d %7.2fx %7.2f %7dw %9.1f %9.1f %9.1f\n",
				level, res.Cycles, float64(baseline)/float64(res.Cycles),
				res.Stats.IPC(), len(prog.Code),
				float64(res.Stats.PRFLive)/c,
				float64(res.Stats.ROBOccupancy)/c,
				float64(res.Stats.IQOccupancy)/c)
		}
	}
	fmt.Println("\nOptimization shrinks execution time while shifting pressure between")
	fmt.Println("structures (registers hold live values longer; queues drain faster) —")
	fmt.Println("the tension the paper's FPE metric and Figure 9 deltas capture.")
}
