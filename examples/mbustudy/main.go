// Mbustudy extends the paper toward multi-bit upsets: as feature sizes
// shrink, one particle strike increasingly flips several adjacent cells,
// and SECDED ECC sized for single-bit upsets stops being sufficient.
// This example measures how the AVF of the core's most vulnerable
// structures scales from single-bit to double- and quad-adjacent faults.
package main

import (
	"fmt"
	"log"

	"sevsim/internal/campaign"
	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

func main() {
	const faults = 150
	bench, err := workloads.ByName("patricia")
	if err != nil {
		log.Fatal(err)
	}
	cfg := machine.CortexA72Like()
	tgt := compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs}
	prog, err := compiler.Compile(bench.Source(bench.TestSize*2), bench.Name, compiler.O2, tgt)
	if err != nil {
		log.Fatal(err)
	}
	exp, err := faultinj.NewExperiment(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s O2 on %s: %d golden cycles, %d faults per cell\n\n",
		bench.Name, cfg.Name, exp.GoldenCycles, faults)

	structures := []string{"RF", "LQ", "IQ.src", "ROB.pc", "ROB.ctrl", "L1D.data"}
	fmt.Printf("%-10s", "structure")
	for _, m := range faultinj.Models() {
		fmt.Printf(" %16s", m)
	}
	fmt.Println()
	for _, name := range structures {
		target, ok := faultinj.TargetByName(name)
		if !ok {
			log.Fatalf("unknown target %s", name)
		}
		fmt.Printf("%-10s", name)
		for _, model := range faultinj.Models() {
			r := campaign.Run(exp, target, campaign.Options{
				Faults: faults, Seed: 77, Model: model,
			})
			fmt.Printf(" %14.2f%%", r.AVF()*100)
		}
		fmt.Println()
	}
	fmt.Println("\nAVF never decreases with upset multiplicity; the growth is modest")
	fmt.Println("because adjacent bits usually share their field's live-or-dead fate —")
	fmt.Println("which is exactly why SECDED ECC remains effective against most MBUs")
	fmt.Println("only until the upset spans an ECC word boundary.")
}
