// Eccstudy reproduces the shape of the paper's Figure 12 for one
// benchmark: whole-CPU FIT rates per optimization level under the three
// protection scenarios (no ECC, ECC on L1D+L2, ECC on L2 only),
// illustrating the paper's headline finding that with caches protected,
// O2 is the most reliable level while O3 is the worst.
package main

import (
	"fmt"
	"log"

	"sevsim/internal/campaign"
	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/fit"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

func main() {
	const faults = 80 // per cell; raise for tighter error margins
	bench, err := workloads.ByName("blowfish")
	if err != nil {
		log.Fatal(err)
	}
	// A reduced scale keeps this example to a few minutes on one core.
	src := bench.Source(bench.TestSize * 3)

	for _, cfg := range machine.Configs() {
		tgt := compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs}
		fmt.Printf("[%s] %s, %d faults per structure field\n", cfg.Name, bench.Name, faults)

		perLevel := map[compiler.OptLevel][]campaign.Result{}
		for _, level := range compiler.Levels {
			prog, err := compiler.Compile(src, bench.Name, level, tgt)
			if err != nil {
				log.Fatal(err)
			}
			exp, err := faultinj.NewExperiment(cfg, prog)
			if err != nil {
				log.Fatal(err)
			}
			for _, target := range faultinj.Targets() {
				r := campaign.Run(exp, target, campaign.Options{Faults: faults, Seed: 7})
				perLevel[level] = append(perLevel[level], r)
			}
		}

		fmt.Printf("%-16s", "scheme")
		for _, level := range compiler.Levels {
			fmt.Printf(" %10s", level)
		}
		fmt.Println()
		for _, scheme := range fit.Schemes() {
			fmt.Printf("%-16s", scheme)
			for _, level := range compiler.Levels {
				cpuFIT := fit.CPU(perLevel[level], cfg.RawFITPerBit, scheme)
				fmt.Printf(" %10.4f", cpuFIT)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
