module sevsim

go 1.22
